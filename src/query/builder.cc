#include "query/builder.h"

namespace aqua {
namespace Q {

namespace {
std::shared_ptr<PlanNode> New(PlanOp op) {
  auto node = std::make_shared<PlanNode>();
  node->op = op;
  return node;
}
}  // namespace

PlanRef ScanTree(std::string collection) {
  auto node = New(PlanOp::kScanTree);
  node->collection = std::move(collection);
  return node;
}

PlanRef ScanList(std::string collection) {
  auto node = New(PlanOp::kScanList);
  node->collection = std::move(collection);
  return node;
}

PlanRef EmptySet() { return New(PlanOp::kEmptySet); }

PlanRef EmptyList() { return New(PlanOp::kEmptyList); }

PlanRef TreeSelect(PlanRef input, PredicateRef pred) {
  auto node = New(PlanOp::kTreeSelect);
  node->children = {std::move(input)};
  node->pred = std::move(pred);
  return node;
}

PlanRef TreeApply(PlanRef input, NodeFn fn) {
  auto node = New(PlanOp::kTreeApply);
  node->children = {std::move(input)};
  node->node_fn = std::move(fn);
  return node;
}

PlanRef TreeApplyExpr(PlanRef input, FnExprRef expr) {
  if (expr == nullptr) expr = FnExpr::Identity();
  auto node = New(PlanOp::kTreeApply);
  node->children = {std::move(input)};
  node->fn_expr = expr;
  node->node_fn = [expr](ObjectStore& store, Oid oid) {
    return expr->Eval(store, oid);
  };
  return node;
}

PlanRef TreeSubSelect(PlanRef input, TreePatternRef tp, SplitOptions opts) {
  auto node = New(PlanOp::kTreeSubSelect);
  node->children = {std::move(input)};
  node->tpattern = std::move(tp);
  node->split_opts = std::move(opts);
  return node;
}

PlanRef TreeSplit(PlanRef input, TreePatternRef tp, SplitFn fn,
                  SplitOptions opts) {
  auto node = New(PlanOp::kTreeSplit);
  node->children = {std::move(input)};
  node->tpattern = std::move(tp);
  node->split_fn = std::move(fn);
  node->split_opts = std::move(opts);
  return node;
}

PlanRef TreeAllAnc(PlanRef input, TreePatternRef tp, AncFn fn,
                   SplitOptions opts) {
  auto node = New(PlanOp::kTreeAllAnc);
  node->children = {std::move(input)};
  node->tpattern = std::move(tp);
  node->anc_fn = std::move(fn);
  node->split_opts = std::move(opts);
  return node;
}

PlanRef TreeAllDesc(PlanRef input, TreePatternRef tp, DescFn fn,
                    SplitOptions opts) {
  auto node = New(PlanOp::kTreeAllDesc);
  node->children = {std::move(input)};
  node->tpattern = std::move(tp);
  node->desc_fn = std::move(fn);
  node->split_opts = std::move(opts);
  return node;
}

PlanRef IndexedSubSelect(std::string collection, std::string attr,
                         PredicateRef anchor, TreePatternRef tp,
                         SplitOptions opts) {
  auto node = New(PlanOp::kIndexedSubSelect);
  node->collection = std::move(collection);
  node->attr = std::move(attr);
  node->anchor = std::move(anchor);
  node->tpattern = std::move(tp);
  node->split_opts = std::move(opts);
  return node;
}

PlanRef IndexedListSubSelect(std::string collection, std::string attr,
                             PredicateRef anchor, AnchoredListPattern lp,
                             ListSplitOptions opts) {
  auto node = New(PlanOp::kIndexedListSubSelect);
  node->collection = std::move(collection);
  node->attr = std::move(attr);
  node->anchor = std::move(anchor);
  node->lpattern = std::move(lp);
  node->lsplit_opts = std::move(opts);
  return node;
}

PlanRef ListSelect(PlanRef input, PredicateRef pred) {
  auto node = New(PlanOp::kListSelect);
  node->children = {std::move(input)};
  node->pred = std::move(pred);
  return node;
}

PlanRef ListApply(PlanRef input, ListNodeFn fn) {
  auto node = New(PlanOp::kListApply);
  node->children = {std::move(input)};
  node->lnode_fn = std::move(fn);
  return node;
}

PlanRef ListApplyExpr(PlanRef input, FnExprRef expr) {
  if (expr == nullptr) expr = FnExpr::Identity();
  auto node = New(PlanOp::kListApply);
  node->children = {std::move(input)};
  node->fn_expr = expr;
  node->lnode_fn = [expr](ObjectStore& store, Oid oid) {
    return expr->Eval(store, oid);
  };
  return node;
}

PlanRef ListSubSelect(PlanRef input, AnchoredListPattern lp,
                      ListSplitOptions opts) {
  auto node = New(PlanOp::kListSubSelect);
  node->children = {std::move(input)};
  node->lpattern = std::move(lp);
  node->lsplit_opts = std::move(opts);
  return node;
}

PlanRef ListSplit(PlanRef input, AnchoredListPattern lp, ListSplitFn fn,
                  ListSplitOptions opts) {
  auto node = New(PlanOp::kListSplit);
  node->children = {std::move(input)};
  node->lpattern = std::move(lp);
  node->lsplit_fn = std::move(fn);
  node->lsplit_opts = std::move(opts);
  return node;
}

PlanRef ListAllAnc(PlanRef input, AnchoredListPattern lp, ListAncFn fn,
                   ListSplitOptions opts) {
  auto node = New(PlanOp::kListAllAnc);
  node->children = {std::move(input)};
  node->lpattern = std::move(lp);
  node->lanc_fn = std::move(fn);
  node->lsplit_opts = std::move(opts);
  return node;
}

PlanRef ListAllDesc(PlanRef input, AnchoredListPattern lp, ListDescFn fn,
                    ListSplitOptions opts) {
  auto node = New(PlanOp::kListAllDesc);
  node->children = {std::move(input)};
  node->lpattern = std::move(lp);
  node->ldesc_fn = std::move(fn);
  node->lsplit_opts = std::move(opts);
  return node;
}

}  // namespace Q
}  // namespace aqua
