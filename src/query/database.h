#ifndef AQUA_QUERY_DATABASE_H_
#define AQUA_QUERY_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "object/object_store.h"
#include "bulk/list.h"
#include "bulk/tree.h"
#include "index/index_manager.h"

namespace aqua {

/// A small OODB: one object store, named list/tree collections, and an
/// index catalog. Queries (plans) execute against a `Database`.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }
  IndexManager& indexes() { return indexes_; }
  const IndexManager& indexes() const { return indexes_; }

  /// Registers a named tree collection (fails on duplicate names across
  /// both kinds).
  Status RegisterTree(const std::string& name, Tree tree);
  Status RegisterList(const std::string& name, List list);

  bool HasTree(const std::string& name) const { return trees_.count(name); }
  bool HasList(const std::string& name) const { return lists_.count(name); }

  Result<const Tree*> GetTree(const std::string& name) const;
  Result<const List*> GetList(const std::string& name) const;

  /// Builds an attribute index over a registered collection (dispatches on
  /// the collection kind).
  Status CreateIndex(const std::string& collection, const std::string& attr);

  std::vector<std::string> CollectionNames() const;
  std::vector<std::string> TreeNames() const;
  std::vector<std::string> ListNames() const;

 private:
  ObjectStore store_;
  IndexManager indexes_;
  std::map<std::string, Tree> trees_;
  std::map<std::string, List> lists_;
};

}  // namespace aqua

#endif  // AQUA_QUERY_DATABASE_H_
