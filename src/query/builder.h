#ifndef AQUA_QUERY_BUILDER_H_
#define AQUA_QUERY_BUILDER_H_

#include <string>

#include "query/plan.h"

namespace aqua {

// Factory functions for query plans. Each returns an immutable `PlanRef`;
// plans compose by nesting, e.g.
//
//   auto plan = Q::TreeSubSelect(Q::ScanTree("family"), pattern);

namespace Q {

PlanRef ScanTree(std::string collection);
PlanRef ScanList(std::string collection);

/// Constant empty results: what a lint-proven-empty operator folds to (the
/// `empty-fold` rewrite rule).
PlanRef EmptySet();
PlanRef EmptyList();

PlanRef TreeSelect(PlanRef input, PredicateRef pred);
PlanRef TreeApply(PlanRef input, NodeFn fn);
/// `apply` from a structured function expression. The plan node carries the
/// expression (so lint's effect analysis can classify it — pure/read-only
/// expressions are certified for morsel-parallel execution) plus the
/// materialized `NodeFn` the executor actually runs. A null `expr` means
/// identity.
PlanRef TreeApplyExpr(PlanRef input, FnExprRef expr);
PlanRef TreeSubSelect(PlanRef input, TreePatternRef tp,
                      SplitOptions opts = {});
PlanRef TreeSplit(PlanRef input, TreePatternRef tp, SplitFn fn,
                  SplitOptions opts = {});
PlanRef TreeAllAnc(PlanRef input, TreePatternRef tp, AncFn fn,
                   SplitOptions opts = {});
PlanRef TreeAllDesc(PlanRef input, TreePatternRef tp, DescFn fn,
                    SplitOptions opts = {});

/// Physical operator: `sub_select` restricted to index candidates. `anchor`
/// is the probe predicate over `attr` of `collection`'s index.
PlanRef IndexedSubSelect(std::string collection, std::string attr,
                         PredicateRef anchor, TreePatternRef tp,
                         SplitOptions opts = {});

/// Physical operator: list `sub_select` restricted to candidate match
/// starts from the index on (`collection`, `attr`), probed with `anchor`
/// (the pattern's head predicate).
PlanRef IndexedListSubSelect(std::string collection, std::string attr,
                             PredicateRef anchor, AnchoredListPattern lp,
                             ListSplitOptions opts = {});

PlanRef ListSelect(PlanRef input, PredicateRef pred);
PlanRef ListApply(PlanRef input, ListNodeFn fn);
/// The list analogue of `TreeApplyExpr` (same expression language;
/// `NodeFn` and `ListNodeFn` share the `(ObjectStore&, Oid) -> Oid`
/// signature).
PlanRef ListApplyExpr(PlanRef input, FnExprRef expr);
PlanRef ListSubSelect(PlanRef input, AnchoredListPattern lp,
                      ListSplitOptions opts = {});
PlanRef ListSplit(PlanRef input, AnchoredListPattern lp, ListSplitFn fn,
                  ListSplitOptions opts = {});
PlanRef ListAllAnc(PlanRef input, AnchoredListPattern lp, ListAncFn fn,
                   ListSplitOptions opts = {});
PlanRef ListAllDesc(PlanRef input, AnchoredListPattern lp, ListDescFn fn,
                    ListSplitOptions opts = {});

}  // namespace Q

}  // namespace aqua

#endif  // AQUA_QUERY_BUILDER_H_
