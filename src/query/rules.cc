#include "query/rules.h"

#include "algebra/derived.h"
#include "lint/interval.h"
#include "lint/pattern_lint.h"
#include "pattern/simplify.h"
#include "query/builder.h"

namespace aqua {

Result<PredicateRef> FindIndexableConjunct(const Database& db,
                                           const std::string& collection,
                                           const PredicateRef& pred) {
  if (pred == nullptr) return Status::NotFound("no predicate");
  switch (pred->kind()) {
    case Predicate::Kind::kCompare: {
      if (!db.indexes().Has(collection, pred->attr())) {
        return Status::NotFound("no index on " + collection + "." +
                                pred->attr());
      }
      AQUA_ASSIGN_OR_RETURN(const AttributeIndex* index,
                            db.indexes().Get(collection, pred->attr()));
      if (!index->CanProbe(*pred)) {
        return Status::NotFound("index cannot answer " + pred->ToString());
      }
      return pred;
    }
    case Predicate::Kind::kAnd: {
      auto left = FindIndexableConjunct(db, collection, pred->left());
      if (left.ok()) return left;
      return FindIndexableConjunct(db, collection, pred->right());
    }
    default:
      return Status::NotFound("predicate has no indexable conjunct");
  }
}

namespace {

class SplitAnchorRule : public RewriteRule {
 public:
  std::string name() const override { return "split-anchor"; }

  Result<PlanRef> Apply(const PlanRef& node,
                        const Database& db) const override {
    if (node->op != PlanOp::kTreeSubSelect) return PlanRef(nullptr);
    if (node->children.size() != 1 ||
        node->children[0]->op != PlanOp::kScanTree) {
      return PlanRef(nullptr);
    }
    const std::string& collection = node->children[0]->collection;
    auto root_pred = ExtractRootPredicate(node->tpattern);
    if (!root_pred.ok()) return PlanRef(nullptr);
    auto anchor = FindIndexableConjunct(db, collection, *root_pred);
    if (!anchor.ok()) return PlanRef(nullptr);
    return Q::IndexedSubSelect(collection, (*anchor)->attr(), *anchor,
                               node->tpattern, node->split_opts);
  }
};

class SelectCascadeRule : public RewriteRule {
 public:
  std::string name() const override { return "select-cascade"; }

  Result<PlanRef> Apply(const PlanRef& node,
                        const Database& db) const override {
    (void)db;
    bool is_select = node->op == PlanOp::kTreeSelect ||
                     node->op == PlanOp::kListSelect;
    if (!is_select || node->pred == nullptr ||
        node->pred->kind() != Predicate::Kind::kAnd) {
      return PlanRef(nullptr);
    }
    // select(and(p1,p2))(R) ≡ select(p2)(select(p1)(R)).
    const PlanRef& input = node->children[0];
    if (node->op == PlanOp::kTreeSelect) {
      return Q::TreeSelect(Q::TreeSelect(input, node->pred->left()),
                           node->pred->right());
    }
    return Q::ListSelect(Q::ListSelect(input, node->pred->left()),
                         node->pred->right());
  }
};

class CheapPredicateFirstRule : public RewriteRule {
 public:
  std::string name() const override { return "cheap-predicate-first"; }

  Result<PlanRef> Apply(const PlanRef& node,
                        const Database& db) const override {
    (void)db;
    bool is_select = node->op == PlanOp::kTreeSelect ||
                     node->op == PlanOp::kListSelect;
    if (!is_select || node->children.size() != 1) return PlanRef(nullptr);
    const PlanRef& inner = node->children[0];
    if (inner->op != node->op || inner->pred == nullptr ||
        node->pred == nullptr) {
      return PlanRef(nullptr);
    }
    // Run the smaller predicate first (its evaluation is cheaper per node
    // and both orders are equivalent).
    if (inner->pred->SizeInNodes() <= node->pred->SizeInNodes()) {
      return PlanRef(nullptr);
    }
    const PlanRef& input = inner->children[0];
    if (node->op == PlanOp::kTreeSelect) {
      return Q::TreeSelect(Q::TreeSelect(input, node->pred), inner->pred);
    }
    return Q::ListSelect(Q::ListSelect(input, node->pred), inner->pred);
  }
};

class ListAnchorRule : public RewriteRule {
 public:
  std::string name() const override { return "list-anchor"; }

  Result<PlanRef> Apply(const PlanRef& node,
                        const Database& db) const override {
    if (node->op != PlanOp::kListSubSelect) return PlanRef(nullptr);
    if (node->children.size() != 1 ||
        node->children[0]->op != PlanOp::kScanList) {
      return PlanRef(nullptr);
    }
    const std::string& collection = node->children[0]->collection;
    auto head = ExtractHeadPredicate(node->lpattern.body);
    if (!head.ok()) return PlanRef(nullptr);
    auto anchor = FindIndexableConjunct(db, collection, *head);
    if (!anchor.ok()) return PlanRef(nullptr);
    return Q::IndexedListSubSelect(collection, (*anchor)->attr(), *anchor,
                                   node->lpattern, node->lsplit_opts);
  }
};

class ApplyFusionRule : public RewriteRule {
 public:
  std::string name() const override { return "apply-fusion"; }

  Result<PlanRef> Apply(const PlanRef& node,
                        const Database& db) const override {
    (void)db;
    if (node->children.size() != 1) return PlanRef(nullptr);
    const PlanRef& inner = node->children[0];
    if (node->op == PlanOp::kTreeApply &&
        inner->op == PlanOp::kTreeApply) {
      // Both applies structured: fuse at the expression level so the
      // composition keeps its inferred effect (and so a pure∘pure fusion
      // stays certified for the parallel path).
      if (node->fn_expr != nullptr && inner->fn_expr != nullptr) {
        return Q::TreeApplyExpr(inner->children[0],
                                FnExpr::Compose(node->fn_expr,
                                                inner->fn_expr));
      }
      NodeFn first = inner->node_fn;
      NodeFn second = node->node_fn;
      NodeFn fused = [first, second](ObjectStore& store,
                                     Oid oid) -> Result<Oid> {
        AQUA_ASSIGN_OR_RETURN(Oid mid, first(store, oid));
        return second(store, mid);
      };
      return Q::TreeApply(inner->children[0], std::move(fused));
    }
    if (node->op == PlanOp::kListApply &&
        inner->op == PlanOp::kListApply) {
      if (node->fn_expr != nullptr && inner->fn_expr != nullptr) {
        return Q::ListApplyExpr(inner->children[0],
                                FnExpr::Compose(node->fn_expr,
                                                inner->fn_expr));
      }
      ListNodeFn first = inner->lnode_fn;
      ListNodeFn second = node->lnode_fn;
      ListNodeFn fused = [first, second](ObjectStore& store,
                                         Oid oid) -> Result<Oid> {
        AQUA_ASSIGN_OR_RETURN(Oid mid, first(store, oid));
        return second(store, mid);
      };
      return Q::ListApply(inner->children[0], std::move(fused));
    }
    return PlanRef(nullptr);
  }
};

class PatternSimplifyRule : public RewriteRule {
 public:
  std::string name() const override { return "pattern-simplify"; }

  Result<PlanRef> Apply(const PlanRef& node,
                        const Database& db) const override {
    (void)db;
    if (node->tpattern != nullptr) {
      TreePatternRef simplified = SimplifyTreePattern(node->tpattern);
      if (simplified->ToString() != node->tpattern->ToString()) {
        auto copy = std::make_shared<PlanNode>(*node);
        copy->tpattern = std::move(simplified);
        return PlanRef(copy);
      }
    }
    if (node->lpattern.body != nullptr) {
      ListPatternRef simplified = SimplifyListPattern(node->lpattern.body);
      if (simplified->ToString() != node->lpattern.body->ToString()) {
        auto copy = std::make_shared<PlanNode>(*node);
        copy->lpattern.body = std::move(simplified);
        return PlanRef(copy);
      }
    }
    return PlanRef(nullptr);
  }
};

/// Folds operators the lint pass proves empty to the constant empty result:
/// an unsatisfiable select predicate, or a pattern whose language is empty,
/// can never produce anything, so the whole input scan is skippable. The
/// empty constants cost 0, so the cost guard always keeps this fold.
class EmptyFoldRule : public RewriteRule {
 public:
  std::string name() const override { return "empty-fold"; }

  Result<PlanRef> Apply(const PlanRef& node,
                        const Database& db) const override {
    (void)db;
    switch (node->op) {
      case PlanOp::kTreeSubSelect:
      case PlanOp::kTreeSplit:
      case PlanOp::kTreeAllAnc:
      case PlanOp::kTreeAllDesc:
      case PlanOp::kIndexedSubSelect:
        if (lint::TreePatternProvablyEmpty(node->tpattern)) {
          return Q::EmptySet();
        }
        return PlanRef(nullptr);
      case PlanOp::kListSubSelect:
      case PlanOp::kListSplit:
      case PlanOp::kListAllAnc:
      case PlanOp::kListAllDesc:
      case PlanOp::kIndexedListSubSelect:
        if (lint::ListPatternProvablyEmpty(node->lpattern.body)) {
          return Q::EmptySet();
        }
        return PlanRef(nullptr);
      case PlanOp::kTreeSelect:
        if (lint::AnalyzePredicateSat(node->pred) ==
            lint::PredSat::kUnsatisfiable) {
          return Q::EmptySet();
        }
        return PlanRef(nullptr);
      case PlanOp::kListSelect:
        // ListSelect's output shape follows its input (one list → a list,
        // a forest → a set), so only the statically list-shaped case folds.
        if (!node->children.empty() && node->children[0] != nullptr &&
            node->children[0]->op == PlanOp::kScanList &&
            lint::AnalyzePredicateSat(node->pred) ==
                lint::PredSat::kUnsatisfiable) {
          return Q::EmptyList();
        }
        return PlanRef(nullptr);
      default:
        return PlanRef(nullptr);
    }
  }
};

}  // namespace

std::unique_ptr<RewriteRule> MakePatternSimplifyRule() {
  return std::make_unique<PatternSimplifyRule>();
}

std::unique_ptr<RewriteRule> MakeListAnchorRule() {
  return std::make_unique<ListAnchorRule>();
}

std::unique_ptr<RewriteRule> MakeApplyFusionRule() {
  return std::make_unique<ApplyFusionRule>();
}

std::unique_ptr<RewriteRule> MakeSplitAnchorRule() {
  return std::make_unique<SplitAnchorRule>();
}

std::unique_ptr<RewriteRule> MakeSelectCascadeRule() {
  return std::make_unique<SelectCascadeRule>();
}

std::unique_ptr<RewriteRule> MakeCheapPredicateFirstRule() {
  return std::make_unique<CheapPredicateFirstRule>();
}

std::unique_ptr<RewriteRule> MakeEmptyFoldRule() {
  return std::make_unique<EmptyFoldRule>();
}

}  // namespace aqua
