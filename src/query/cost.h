#ifndef AQUA_QUERY_COST_H_
#define AQUA_QUERY_COST_H_

#include "common/result.h"
#include "lint/absint.h"
#include "obs/stats.h"
#include "query/database.h"
#include "query/plan.h"

namespace aqua {

/// Estimated cost and output cardinality of a (sub)plan.
struct CostEstimate {
  /// Abstract work units (roughly: node visits × per-node pattern work).
  double cost = 0;
  /// Expected number of collections in the output datum.
  double out_collections = 1;
  /// Expected total nodes across those collections.
  double out_nodes = 0;
};

/// A simple selectivity-based cost model for the rewriter (§4's argument is
/// exactly a cost argument: the anchor probe narrows the match search from
/// every node to the index candidates).
///
/// Heuristics:
///  * scans cost the collection size;
///  * a pattern operator costs (input nodes) × (pattern size) × K, where K
///    grows with closure operators (they backtrack);
///  * an indexed sub_select costs log(N) for the probe plus
///    (candidates) × (pattern size) × K, with candidates from exact index
///    statistics;
///  * the abstract-interpretation facts (lint/absint.h) act as static
///    priors: every node's estimated `out_collections` is clamped into its
///    inferred cardinality interval, and a provably-empty node estimates
///    zero output — so the heuristics can never contradict what the
///    analysis proved;
///  * with a `StatsWarehouse` attached, the static selectivity constants
///    and the index candidate guess are replaced per subplan fingerprint by
///    the learned (EWMA) runtime observations — once a record has folded in
///    `StatsWarehouse::kMinConfidence` harvests — still clamped by the
///    facts above, so the learned values can never break absint soundness.
class CostModel {
 public:
  explicit CostModel(const Database* db) : db_(db) {}
  /// Learned mode: consult `stats` for per-fingerprint selectivities and
  /// candidates-per-probe. `stats` may be null (== static mode) and must
  /// outlive the model. Counts `cost.learned_hits` / `cost.learned_misses`.
  CostModel(const Database* db, const obs::StatsWarehouse* stats)
      : db_(db), stats_(stats) {}

  Result<CostEstimate> Estimate(const PlanRef& plan) const;

  /// Work multiplier of a tree pattern: its node count, scaled up for each
  /// closure/disjunction (backtracking ambiguity).
  static double PatternWork(const TreePatternRef& tp);
  static double PatternWork(const AnchoredListPattern& lp);

 private:
  /// The recursive heuristic estimate, clamped per node by the inferred
  /// facts (computed once per `Estimate` call at the root).
  Result<CostEstimate> EstimateNode(const PlanRef& plan,
                                    const lint::AbsIntResult& facts) const;

  /// Learned selectivity for `plan`'s fingerprint, clamped to [0, 1];
  /// `fallback` when no warehouse is attached or the record is missing /
  /// below the confidence floor.
  double SelectivityFor(const PlanRef& plan, double fallback) const;
  /// Learned candidates-per-probe (absolute count) for an indexed op.
  double CandidatesFor(const PlanRef& plan, double fallback) const;

  const Database* db_;
  const obs::StatsWarehouse* stats_ = nullptr;
};

}  // namespace aqua

#endif  // AQUA_QUERY_COST_H_
