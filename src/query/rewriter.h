#ifndef AQUA_QUERY_REWRITER_H_
#define AQUA_QUERY_REWRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "lint/diagnostic.h"
#include "query/cost.h"
#include "query/database.h"
#include "query/plan.h"
#include "query/rules.h"

namespace aqua {

/// Rule-based, cost-guarded plan rewriter (the EPOQ-style optimizer shell
/// the paper's §8 mentions the algebra was designed to feed).
///
/// The rewriter walks the plan bottom-up, offering every rule at every node;
/// a rewrite is kept only when the cost model estimates it cheaper. This
/// repeats until a fixpoint (bounded by `max_passes`).
class Rewriter {
 public:
  explicit Rewriter(const Database* db) : db_(db), cost_model_(db) {}
  /// Stats-informed mode: candidate plans (notably the §4 split-anchor
  /// rewrites) are ranked with learned selectivities and observed
  /// candidates-per-probe instead of the static constants. `stats` may be
  /// null (static mode) and must outlive the rewriter.
  Rewriter(const Database* db, const obs::StatsWarehouse* stats)
      : db_(db), cost_model_(db, stats) {}

  void AddRule(std::unique_ptr<RewriteRule> rule);
  /// Installs the built-in rules (split-anchor, select-cascade,
  /// cheap-predicate-first).
  void AddDefaultRules();

  /// Names of rules applied, in order, during the last `Optimize`.
  const std::vector<std::string>& applied() const { return applied_; }

  /// AQL020 findings of candidates the safety checker rejected during the
  /// last `Optimize`. Every candidate a rule offers (and the cost model
  /// prefers) is first asserted against the abstract-interpretation facts
  /// of the plan it replaces (`lint::CheckRewriteSafety`); a contradiction
  /// vetoes the rewrite and lands here (counted in
  /// `lint.rewrites_rejected`).
  const std::vector<lint::Diagnostic>& rejections() const {
    return rejections_;
  }

  Result<PlanRef> Optimize(const PlanRef& plan);

  size_t max_passes = 8;

 private:
  Result<PlanRef> RewriteNode(const PlanRef& node, bool* changed);

  const Database* db_;
  CostModel cost_model_;
  std::vector<std::unique_ptr<RewriteRule>> rules_;
  std::vector<std::string> applied_;
  std::vector<lint::Diagnostic> rejections_;
};

}  // namespace aqua

#endif  // AQUA_QUERY_REWRITER_H_
