#include "query/rewriter.h"

#include "lint/absint.h"
#include "obs/metrics.h"

namespace aqua {

void Rewriter::AddRule(std::unique_ptr<RewriteRule> rule) {
  rules_.push_back(std::move(rule));
}

void Rewriter::AddDefaultRules() {
  AddRule(MakeEmptyFoldRule());
  AddRule(MakePatternSimplifyRule());
  AddRule(MakeSelectCascadeRule());
  AddRule(MakeCheapPredicateFirstRule());
  AddRule(MakeSplitAnchorRule());
  AddRule(MakeListAnchorRule());
  AddRule(MakeApplyFusionRule());
}

Result<PlanRef> Rewriter::RewriteNode(const PlanRef& node, bool* changed) {
  if (node == nullptr) return Status::InvalidArgument("null plan node");

  // Rewrite inputs first (bottom-up).
  std::vector<PlanRef> new_children;
  bool child_changed = false;
  for (const PlanRef& child : node->children) {
    AQUA_ASSIGN_OR_RETURN(PlanRef rewritten, RewriteNode(child, &child_changed));
    new_children.push_back(std::move(rewritten));
  }
  PlanRef current = node;
  if (child_changed) {
    auto copy = std::make_shared<PlanNode>(*node);
    copy->children = std::move(new_children);
    current = copy;
    *changed = true;
  }

  // Offer each rule; keep a rewrite only when estimated cheaper.
  for (const auto& rule : rules_) {
    AQUA_ASSIGN_OR_RETURN(PlanRef candidate, rule->Apply(current, *db_));
    if (candidate == nullptr) continue;
    AQUA_ASSIGN_OR_RETURN(CostEstimate before, cost_model_.Estimate(current));
    AQUA_ASSIGN_OR_RETURN(CostEstimate after, cost_model_.Estimate(candidate));
    if (after.cost < before.cost) {
      // Cost says yes; the facts get a veto. A §4 rewrite must preserve
      // the result's shape, element kind, cardinality interval, and the
      // duplicate-freeness/order invariants the algebra guarantees.
      std::vector<lint::Diagnostic> unsafe =
          lint::CheckRewriteSafety(*db_, current, candidate, rule->name());
      if (!unsafe.empty()) {
        AQUA_OBS_COUNT("lint.rewrites_rejected", 1);
        for (lint::Diagnostic& d : unsafe) {
          rejections_.push_back(std::move(d));
        }
        continue;
      }
      applied_.push_back(rule->name());
      current = candidate;
      *changed = true;
    }
  }
  return current;
}

Result<PlanRef> Rewriter::Optimize(const PlanRef& plan) {
  applied_.clear();
  rejections_.clear();
  PlanRef current = plan;
  for (size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    AQUA_ASSIGN_OR_RETURN(current, RewriteNode(current, &changed));
    if (!changed) break;
  }
  return current;
}

}  // namespace aqua
