#ifndef AQUA_QUERY_VALIDATE_H_
#define AQUA_QUERY_VALIDATE_H_

#include "common/result.h"
#include "query/database.h"
#include "query/plan.h"

namespace aqua {

// §3.1, footnote 2: "This cannot be determined by the user, since it would
// be a violation of encapsulation. However, the query optimizer can verify
// that the attributes involved are stored and not computed." This module is
// that verification.

/// Checks every alphabet-predicate reachable from `tp` against the object
/// types actually present in `tree`: each referenced attribute must be a
/// *stored* attribute of every present type that declares it. Returns
/// InvalidArgument naming the offending attribute otherwise.
Status ValidateTreePatternAgainst(const ObjectStore& store, const Tree& tree,
                                  const TreePatternRef& tp);

/// The list analogue.
Status ValidateListPatternAgainst(const ObjectStore& store, const List& list,
                                  const AnchoredListPattern& lp);

/// Walks a plan and validates every pattern/predicate parameter against the
/// collection its scan feeds it from. Plans whose inputs are not direct
/// scans (rewritten shapes, forests) validate against the union of the
/// database's collections named in the subtree.
Status ValidatePlanPatterns(const Database& db, const PlanRef& plan);

}  // namespace aqua

#endif  // AQUA_QUERY_VALIDATE_H_
