#ifndef AQUA_QUERY_VALIDATE_H_
#define AQUA_QUERY_VALIDATE_H_

#include <vector>

#include "common/result.h"
#include "lint/diagnostic.h"
#include "query/database.h"
#include "query/plan.h"

namespace aqua {

// §3.1, footnote 2: "This cannot be determined by the user, since it would
// be a violation of encapsulation. However, the query optimizer can verify
// that the attributes involved are stored and not computed." This module is
// that verification.

/// Checks every alphabet-predicate reachable from `tp` against the object
/// types actually present in `tree`: each referenced attribute must be a
/// *stored* attribute of every present type that declares it. Returns
/// InvalidArgument naming the offending attribute otherwise.
Status ValidateTreePatternAgainst(const StoreView& store, const Tree& tree,
                                  const TreePatternRef& tp);

/// The list analogue.
Status ValidateListPatternAgainst(const StoreView& store, const List& list,
                                  const AnchoredListPattern& lp);

/// Walks a plan and validates every pattern/predicate parameter against the
/// collection its scan feeds it from. Plans whose inputs are not direct
/// scans (rewritten shapes, forests) validate against the union of the
/// database's collections named in the subtree.
Status ValidatePlanPatterns(const Database& db, const PlanRef& plan);

// Diagnostic-producing cores of the checks above (code AQL011,
// computed-attribute). The `Validate*` wrappers return the first violation's
// message as a Status; `aqua::lint` consumes the full structured lists.

/// Violations in every alphabet-predicate reachable from `tp`, against the
/// types present in `tree`. Spans point at the offending comparison when the
/// predicate was parsed from text.
std::vector<lint::Diagnostic> TreePatternStoredAttrViolations(
    const StoreView& store, const Tree& tree, const TreePatternRef& tp);

/// The list analogue.
std::vector<lint::Diagnostic> ListPatternStoredAttrViolations(
    const StoreView& store, const List& list, const AnchoredListPattern& lp);

/// Violations for one plan node's own parameters (pred / anchor / patterns),
/// checked against the types of the collections scanned in its subtree.
/// Does not recurse into children; unknown collections are skipped (the lint
/// pass reports those separately as AQL012).
std::vector<lint::Diagnostic> PlanNodeStoredAttrViolations(
    const Database& db, const PlanRef& node);

}  // namespace aqua

#endif  // AQUA_QUERY_VALIDATE_H_
