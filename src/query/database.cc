#include "query/database.h"

namespace aqua {

Status Database::RegisterTree(const std::string& name, Tree tree) {
  if (HasTree(name) || HasList(name)) {
    return Status::AlreadyExists("collection '" + name + "' already exists");
  }
  AQUA_RETURN_IF_ERROR(tree.Validate());
  trees_.emplace(name, std::move(tree));
  return Status::OK();
}

Status Database::RegisterList(const std::string& name, List list) {
  if (HasTree(name) || HasList(name)) {
    return Status::AlreadyExists("collection '" + name + "' already exists");
  }
  lists_.emplace(name, std::move(list));
  return Status::OK();
}

Result<const Tree*> Database::GetTree(const std::string& name) const {
  auto it = trees_.find(name);
  if (it == trees_.end()) {
    return Status::NotFound("no tree collection named '" + name + "'");
  }
  return &it->second;
}

Result<const List*> Database::GetList(const std::string& name) const {
  auto it = lists_.find(name);
  if (it == lists_.end()) {
    return Status::NotFound("no list collection named '" + name + "'");
  }
  return &it->second;
}

Status Database::CreateIndex(const std::string& collection,
                             const std::string& attr) {
  if (HasTree(collection)) {
    AQUA_ASSIGN_OR_RETURN(const Tree* tree, GetTree(collection));
    return indexes_.CreateTreeIndex(collection, store_, *tree, attr);
  }
  if (HasList(collection)) {
    AQUA_ASSIGN_OR_RETURN(const List* list, GetList(collection));
    return indexes_.CreateListIndex(collection, store_, *list, attr);
  }
  return Status::NotFound("no collection named '" + collection + "'");
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> out;
  for (const auto& [name, tree] : trees_) out.push_back(name);
  for (const auto& [name, list] : lists_) out.push_back(name);
  return out;
}

std::vector<std::string> Database::TreeNames() const {
  std::vector<std::string> out;
  for (const auto& [name, tree] : trees_) out.push_back(name);
  return out;
}

std::vector<std::string> Database::ListNames() const {
  std::vector<std::string> out;
  for (const auto& [name, list] : lists_) out.push_back(name);
  return out;
}

}  // namespace aqua
