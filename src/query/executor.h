#ifndef AQUA_QUERY_EXECUTOR_H_
#define AQUA_QUERY_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "bulk/datum.h"
#include "exec/compile.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/database.h"
#include "query/plan.h"

namespace aqua {

/// Execution statistics for one `Execute` call.
struct ExecStats {
  size_t operators_evaluated = 0;
  size_t trees_processed = 0;
  size_t lists_processed = 0;
  size_t index_probes = 0;
  size_t index_candidates = 0;
  /// Lifecycle accounting (0 when observability is compiled out): the
  /// process-unique query id, total CPU across the query thread and every
  /// fan-out helper, and the peak of the estimated live bytes.
  uint64_t query_id = 0;
  uint64_t cpu_ns = 0;
  uint64_t mem_peak_bytes = 0;
};

/// Per-operator measurements collected during `Execute`.
struct OperatorStats {
  size_t invocations = 0;
  double total_ms = 0;
  /// Cardinality of the last output (set elements / tree nodes / list
  /// elements / 1 for scalars).
  size_t last_output_size = 0;
  /// Query-thread CPU spent in this op's Run (helper CPU is accounted to
  /// the query total, not per-op).
  double cpu_ms = 0;
  /// Estimated bytes of the op's last output.
  size_t out_bytes = 0;
  /// Observed input cardinality of the last call (children's outputs; an
  /// index probe's candidate set; a source leaf's own output).
  size_t in_rows = 0;
  /// Index probes / candidates attributed to this op (indexed ops only).
  size_t probes = 0;
  size_t candidates = 0;
};

/// Facade over the compiled physical execution pipeline: each `Execute`
/// compiles the plan into `exec::PhysicalOp`s (see `exec/compile.h`),
/// prepares them, and runs the tree against a `Database`.
///
/// Pattern operators accept either a single collection datum or a *set* of
/// collections (forest outputs of `select`, subtree sets from rewrites) and
/// map over the set, unioning results — this is what lets the §4 rewrite
/// compose `apply(sub_select(...))` over `split`'s output. These set
/// fan-outs run morsel-parallel on up to `threads()` workers; the merge is
/// order-stable, so results are byte-identical to serial execution at any
/// thread count (`set_threads(1)` or `AQUA_THREADS=1` reproduces the
/// original interpreter exactly).
class Executor {
 public:
  explicit Executor(Database* db) : db_(db) {}

  Result<Datum> Execute(const PlanRef& plan);

  /// Executes a query group: plans that share their input (same digest
  /// fingerprint, verified structurally with `PlanEquals`) and are pattern
  /// sub_selects batch into one `exec::BatchedPatternOp`, so one scan of
  /// the shared collection answers all of them (see `pattern/multi.h`);
  /// everything else falls back to an individual `Execute`. Results are
  /// positional with `plans`, and each is byte-identical to what a
  /// standalone `Execute` of that plan would return, at any thread count.
  ///
  /// Query-group semantics: the batch is for *read-only* pattern queries —
  /// batched plans run against one pinned snapshot with no execution-order
  /// guarantee between plans of a group. Per-batch lifecycle (one
  /// `QueryContext`: deadline, memory budget, cancellation) covers the
  /// whole group; the digest table records each member plan individually
  /// (wall time attributed evenly across the group). `stats()`, `trace()`
  /// and `ExplainAnalyze` reflect only the plans that fell back to
  /// `Execute`.
  std::vector<Result<Datum>> ExecuteBatch(const std::vector<PlanRef>& plans);

  const ExecStats& stats() const { return stats_; }

  /// Overrides the fan-out parallelism for this executor (including the
  /// query thread itself); 0 restores the default
  /// (`AQUA_THREADS` or the hardware concurrency).
  void set_threads(size_t n) { threads_override_ = n; }
  size_t threads() const {
    return threads_override_ != 0 ? threads_override_
                                  : exec::ThreadPool::DefaultThreads();
  }

  /// Wall-clock deadline for each `Execute`; past it the query unwinds with
  /// `kDeadlineExceeded` at the next cooperative checkpoint. 0 restores the
  /// default (`AQUA_QUERY_TIMEOUT_MS`, unlimited when that is unset).
  void set_timeout_ms(uint64_t ms) { timeout_ms_ = ms; }
  uint64_t timeout_ms() const { return timeout_ms_; }

  /// Budget on the estimated live bytes materialized by each `Execute`;
  /// past it the query unwinds with `kCancelled`. 0 restores the default
  /// (`AQUA_QUERY_MEM_LIMIT_MB`, unlimited when that is unset).
  void set_mem_limit_bytes(uint64_t bytes) { mem_limit_bytes_ = bytes; }
  uint64_t mem_limit_bytes() const { return mem_limit_bytes_; }

  /// Enables span collection: each `Execute` then records one span tree
  /// (root span "Execute", one child span per operator evaluation, and —
  /// at `threads() > 1` — per-morsel spans stitched under their fan-out
  /// operator).
  void set_trace_enabled(bool on) { trace_.set_enabled(on); }
  bool trace_enabled() const { return trace_.enabled(); }

  /// Span tree of the most recent `Execute` (empty when tracing is off).
  const obs::Trace& trace() const { return trace_; }

  /// Chrome trace-event JSON of the last `Execute`'s span tree, with the
  /// registry counter deltas attributed to that execution embedded.
  std::string TraceJson() const { return trace_.ToChromeJson(&last_counters_); }

  /// Indented text rendering of the last `Execute`'s span tree.
  std::string TraceReport() const { return trace_.ToTextReport(); }

  /// Registry counter/histogram deltas attributed to the most recent
  /// `Execute` (what the executor and the layers below it did).
  const obs::Snapshot& last_counters() const { return last_counters_; }

  /// Renders the plan annotated with the measurements of the most recent
  /// `Execute` (EXPLAIN ANALYZE) plus the cost model's estimated rows next
  /// to the observed ones and the per-op Q-error
  /// (`max((est+1)/(act+1), (act+1)/(est+1))` — 1.00 is a perfect
  /// estimate), e.g.
  ///
  ///   TreeSubSelect [...]  (1 call, 0.42 ms, out=7, ..., est=12, act=7, q=1.62)
  ///     ScanTree [t]  (1 call, 0.00 ms, out=8000, ..., est=8000, act=8000, q=1.00)
  ///
  /// Estimates come from the stats-informed cost model (the global
  /// `StatsWarehouse`), so a warmed process shows shrinking Q-errors.
  std::string ExplainAnalyze(const PlanRef& plan) const;

 private:
  /// Harvests the per-op atomics of the compiled tree into `op_stats_`
  /// (keyed by logical node, for ExplainAnalyze).
  void CollectOpStats(const exec::PhysicalOpRef& op);

  /// The AQUA_LINT=error refusal gate shared by `Execute` and the batch
  /// path: non-OK when the plan carries an error-severity finding.
  Status LintGate(const PlanRef& plan);

  /// Runs one verified batchable group (>= 2 plans) through
  /// `exec::CompileBatch`, writing each member's result to
  /// `out[indices[k]]`. Falls back to individual `Execute` calls when the
  /// group fails to compile.
  void ExecuteGroup(const std::vector<PlanRef>& plans,
                    const std::vector<size_t>& indices,
                    std::vector<Result<Datum>>* out);

  Database* db_;
  size_t threads_override_ = 0;
  uint64_t timeout_ms_ = 0;
  uint64_t mem_limit_bytes_ = 0;
  ExecStats stats_;
  std::map<const PlanNode*, OperatorStats> op_stats_;
  obs::Trace trace_;
  obs::Snapshot last_counters_;
};

}  // namespace aqua

#endif  // AQUA_QUERY_EXECUTOR_H_
