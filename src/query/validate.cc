#include "query/validate.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

namespace aqua {

namespace {

void CollectListPatternPreds(const ListPattern& lp,
                             std::vector<PredicateRef>* out);

void CollectTreePatternPreds(const TreePattern& tp,
                             std::vector<PredicateRef>* out) {
  switch (tp.kind()) {
    case TreePattern::Kind::kLeaf:
      if (tp.pred() != nullptr) out->push_back(tp.pred());
      return;
    case TreePattern::Kind::kNode:
      if (tp.pred() != nullptr) out->push_back(tp.pred());
      CollectListPatternPreds(*tp.children(), out);
      return;
    case TreePattern::Kind::kPoint:
      return;
    default:
      for (const auto& part : tp.alts()) {
        CollectTreePatternPreds(*part, out);
      }
      return;
  }
}

void CollectListPatternPreds(const ListPattern& lp,
                             std::vector<PredicateRef>* out) {
  switch (lp.kind()) {
    case ListPattern::Kind::kPred:
      out->push_back(lp.pred());
      return;
    case ListPattern::Kind::kTreeAtom:
      CollectTreePatternPreds(*lp.tree_atom(), out);
      return;
    case ListPattern::Kind::kAny:
    case ListPattern::Kind::kPoint:
      return;
    default:
      for (const auto& part : lp.parts()) {
        CollectListPatternPreds(*part, out);
      }
      return;
  }
}

std::set<TypeId> TypesOfCells(const StoreView& store,
                              const std::vector<NodePayload>& payloads) {
  std::set<TypeId> types;
  for (const NodePayload& p : payloads) {
    if (!p.is_cell()) continue;
    auto obj = store.Get(p.oid());
    if (obj.ok()) types.insert((*obj)->type());
  }
  return types;
}

/// The comparison node that reads `attr`, for span attribution.
const Predicate* FindCompareOnAttr(const Predicate& pred,
                                   const std::string& attr) {
  if (pred.kind() == Predicate::Kind::kCompare) {
    return pred.attr() == attr ? &pred : nullptr;
  }
  if (pred.left() != nullptr) {
    if (const Predicate* hit = FindCompareOnAttr(*pred.left(), attr)) {
      return hit;
    }
  }
  if (pred.right() != nullptr) {
    return FindCompareOnAttr(*pred.right(), attr);
  }
  return nullptr;
}

/// A predicate is admissible when every attribute it reads is *stored* in
/// every present type that declares it. Types without the attribute are
/// fine — the predicate simply never matches those objects (§3.1). Each
/// violation becomes one AQL011 diagnostic.
void CollectPredicateViolations(const Schema& schema,
                                const std::set<TypeId>& types,
                                const Predicate& pred,
                                std::vector<lint::Diagnostic>* out) {
  std::vector<std::string> attrs;
  pred.CollectAttrs(&attrs);
  for (const std::string& attr : attrs) {
    for (TypeId type : types) {
      auto def = schema.GetType(type);
      if (!def.ok() || !(*def)->HasAttr(attr)) continue;
      auto idx = (*def)->AttrIndex(attr);
      if (!idx.ok()) continue;
      if (!(*def)->attrs()[*idx].stored) {
        lint::Diagnostic d;
        d.code = lint::DiagCode::kComputedAttribute;
        d.severity = lint::DefaultSeverity(d.code);
        d.message =
            "alphabet-predicates may only use stored attributes (§3.1): '" +
            attr + "' is computed in type '" + (*def)->name() + "'";
        if (const Predicate* site = FindCompareOnAttr(pred, attr)) {
          d.span = site->span();
        }
        out->push_back(std::move(d));
        break;  // one diagnostic per attribute, not per type
      }
    }
  }
}

void CollectPredsViolations(const StoreView& store,
                            const std::set<TypeId>& types,
                            const std::vector<PredicateRef>& preds,
                            std::vector<lint::Diagnostic>* out) {
  for (const PredicateRef& pred : preds) {
    if (pred == nullptr) continue;
    CollectPredicateViolations(store.schema(), types, *pred, out);
  }
}

/// First violation as the legacy Status (message text unchanged).
Status FirstViolationStatus(const std::vector<lint::Diagnostic>& diags) {
  if (diags.empty()) return Status::OK();
  return Status::InvalidArgument(diags.front().message);
}

void CollectScanCollections(const PlanRef& node,
                            std::vector<std::string>* out) {
  if (node == nullptr) return;
  if (node->op == PlanOp::kScanTree || node->op == PlanOp::kScanList ||
      node->op == PlanOp::kIndexedSubSelect ||
      node->op == PlanOp::kIndexedListSubSelect) {
    out->push_back(node->collection);
  }
  for (const PlanRef& child : node->children) {
    CollectScanCollections(child, out);
  }
}

Result<std::set<TypeId>> TypesInCollection(const Database& db,
                                           const std::string& name) {
  if (db.HasTree(name)) {
    AQUA_ASSIGN_OR_RETURN(const Tree* tree, db.GetTree(name));
    std::vector<NodePayload> payloads;
    for (NodeId v : tree->Preorder()) payloads.push_back(tree->payload(v));
    return TypesOfCells(db.store(), payloads);
  }
  AQUA_ASSIGN_OR_RETURN(const List* list, db.GetList(name));
  return TypesOfCells(db.store(), list->elems());
}

std::vector<PredicateRef> NodeParameterPreds(const PlanNode& node) {
  std::vector<PredicateRef> preds;
  if (node.pred != nullptr) preds.push_back(node.pred);
  if (node.anchor != nullptr) preds.push_back(node.anchor);
  if (node.tpattern != nullptr) CollectTreePatternPreds(*node.tpattern, &preds);
  if (node.lpattern.body != nullptr) {
    CollectListPatternPreds(*node.lpattern.body, &preds);
  }
  return preds;
}

}  // namespace

std::vector<lint::Diagnostic> TreePatternStoredAttrViolations(
    const StoreView& store, const Tree& tree, const TreePatternRef& tp) {
  std::vector<lint::Diagnostic> out;
  if (tp == nullptr) return out;
  std::vector<NodePayload> payloads;
  for (NodeId v : tree.Preorder()) payloads.push_back(tree.payload(v));
  std::vector<PredicateRef> preds;
  CollectTreePatternPreds(*tp, &preds);
  CollectPredsViolations(store, TypesOfCells(store, payloads), preds, &out);
  return out;
}

std::vector<lint::Diagnostic> ListPatternStoredAttrViolations(
    const StoreView& store, const List& list, const AnchoredListPattern& lp) {
  std::vector<lint::Diagnostic> out;
  if (lp.body == nullptr) return out;
  std::vector<PredicateRef> preds;
  CollectListPatternPreds(*lp.body, &preds);
  CollectPredsViolations(store, TypesOfCells(store, list.elems()), preds, &out);
  return out;
}

std::vector<lint::Diagnostic> PlanNodeStoredAttrViolations(
    const Database& db, const PlanRef& node) {
  std::vector<lint::Diagnostic> out;
  if (node == nullptr) return out;
  std::vector<std::string> collections;
  CollectScanCollections(node, &collections);
  std::set<TypeId> types;
  for (const std::string& name : collections) {
    Result<std::set<TypeId>> in_coll = TypesInCollection(db, name);
    if (!in_coll.ok()) continue;  // unknown collection: AQL012's job
    types.insert(in_coll->begin(), in_coll->end());
  }
  CollectPredsViolations(db.store(), types, NodeParameterPreds(*node), &out);
  return out;
}

Status ValidateTreePatternAgainst(const StoreView& store, const Tree& tree,
                                  const TreePatternRef& tp) {
  if (tp == nullptr) return Status::InvalidArgument("null tree pattern");
  return FirstViolationStatus(TreePatternStoredAttrViolations(store, tree, tp));
}

Status ValidateListPatternAgainst(const StoreView& store, const List& list,
                                  const AnchoredListPattern& lp) {
  if (lp.body == nullptr) return Status::InvalidArgument("null list pattern");
  return FirstViolationStatus(
      ListPatternStoredAttrViolations(store, list, lp));
}

Status ValidatePlanPatterns(const Database& db, const PlanRef& plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  // The types this node's parameters are evaluated against: everything in
  // the collections scanned below it (and by it, for physical index ops).
  // Unknown collections stay hard errors here, unlike the lint pass.
  std::vector<std::string> collections;
  CollectScanCollections(plan, &collections);
  std::set<TypeId> types;
  for (const std::string& name : collections) {
    AQUA_ASSIGN_OR_RETURN(std::set<TypeId> in_coll,
                          TypesInCollection(db, name));
    types.insert(in_coll.begin(), in_coll.end());
  }

  std::vector<lint::Diagnostic> diags;
  CollectPredsViolations(db.store(), types, NodeParameterPreds(*plan), &diags);
  AQUA_RETURN_IF_ERROR(FirstViolationStatus(diags));

  for (const PlanRef& child : plan->children) {
    AQUA_RETURN_IF_ERROR(ValidatePlanPatterns(db, child));
  }
  return Status::OK();
}

}  // namespace aqua
