#include "query/validate.h"

#include <algorithm>
#include <set>
#include <vector>

namespace aqua {

namespace {

void CollectListPatternPreds(const ListPattern& lp,
                             std::vector<PredicateRef>* out);

void CollectTreePatternPreds(const TreePattern& tp,
                             std::vector<PredicateRef>* out) {
  switch (tp.kind()) {
    case TreePattern::Kind::kLeaf:
      if (tp.pred() != nullptr) out->push_back(tp.pred());
      return;
    case TreePattern::Kind::kNode:
      if (tp.pred() != nullptr) out->push_back(tp.pred());
      CollectListPatternPreds(*tp.children(), out);
      return;
    case TreePattern::Kind::kPoint:
      return;
    default:
      for (const auto& part : tp.alts()) {
        CollectTreePatternPreds(*part, out);
      }
      return;
  }
}

void CollectListPatternPreds(const ListPattern& lp,
                             std::vector<PredicateRef>* out) {
  switch (lp.kind()) {
    case ListPattern::Kind::kPred:
      out->push_back(lp.pred());
      return;
    case ListPattern::Kind::kTreeAtom:
      CollectTreePatternPreds(*lp.tree_atom(), out);
      return;
    case ListPattern::Kind::kAny:
    case ListPattern::Kind::kPoint:
      return;
    default:
      for (const auto& part : lp.parts()) {
        CollectListPatternPreds(*part, out);
      }
      return;
  }
}

std::set<TypeId> TypesOfCells(const ObjectStore& store,
                              const std::vector<NodePayload>& payloads) {
  std::set<TypeId> types;
  for (const NodePayload& p : payloads) {
    if (!p.is_cell()) continue;
    auto obj = store.Get(p.oid());
    if (obj.ok()) types.insert((*obj)->type());
  }
  return types;
}

/// A predicate is admissible when every attribute it reads is *stored* in
/// every present type that declares it. Types without the attribute are
/// fine — the predicate simply never matches those objects (§3.1).
Status ValidatePredicate(const Schema& schema, const std::set<TypeId>& types,
                         const Predicate& pred) {
  std::vector<std::string> attrs;
  pred.CollectAttrs(&attrs);
  for (const std::string& attr : attrs) {
    for (TypeId type : types) {
      auto def = schema.GetType(type);
      if (!def.ok() || !(*def)->HasAttr(attr)) continue;
      auto idx = (*def)->AttrIndex(attr);
      if (!idx.ok()) continue;
      if (!(*def)->attrs()[*idx].stored) {
        return Status::InvalidArgument(
            "alphabet-predicates may only use stored attributes (§3.1): '" +
            attr + "' is computed in type '" + (*def)->name() + "'");
      }
    }
  }
  return Status::OK();
}

Status ValidatePreds(const ObjectStore& store, const std::set<TypeId>& types,
                     const std::vector<PredicateRef>& preds) {
  for (const PredicateRef& pred : preds) {
    if (pred == nullptr) continue;
    AQUA_RETURN_IF_ERROR(ValidatePredicate(store.schema(), types, *pred));
  }
  return Status::OK();
}

void CollectScanCollections(const PlanRef& node,
                            std::vector<std::string>* out) {
  if (node == nullptr) return;
  if (node->op == PlanOp::kScanTree || node->op == PlanOp::kScanList ||
      node->op == PlanOp::kIndexedSubSelect ||
      node->op == PlanOp::kIndexedListSubSelect) {
    out->push_back(node->collection);
  }
  for (const PlanRef& child : node->children) {
    CollectScanCollections(child, out);
  }
}

Result<std::set<TypeId>> TypesInCollection(const Database& db,
                                           const std::string& name) {
  if (db.HasTree(name)) {
    AQUA_ASSIGN_OR_RETURN(const Tree* tree, db.GetTree(name));
    std::vector<NodePayload> payloads;
    for (NodeId v : tree->Preorder()) payloads.push_back(tree->payload(v));
    return TypesOfCells(db.store(), payloads);
  }
  AQUA_ASSIGN_OR_RETURN(const List* list, db.GetList(name));
  return TypesOfCells(db.store(), list->elems());
}

}  // namespace

Status ValidateTreePatternAgainst(const ObjectStore& store, const Tree& tree,
                                  const TreePatternRef& tp) {
  if (tp == nullptr) return Status::InvalidArgument("null tree pattern");
  std::vector<NodePayload> payloads;
  for (NodeId v : tree.Preorder()) payloads.push_back(tree.payload(v));
  std::vector<PredicateRef> preds;
  CollectTreePatternPreds(*tp, &preds);
  return ValidatePreds(store, TypesOfCells(store, payloads), preds);
}

Status ValidateListPatternAgainst(const ObjectStore& store, const List& list,
                                  const AnchoredListPattern& lp) {
  if (lp.body == nullptr) return Status::InvalidArgument("null list pattern");
  std::vector<PredicateRef> preds;
  CollectListPatternPreds(*lp.body, &preds);
  return ValidatePreds(store, TypesOfCells(store, list.elems()), preds);
}

Status ValidatePlanPatterns(const Database& db, const PlanRef& plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  // The types this node's parameters are evaluated against: everything in
  // the collections scanned below it (and by it, for physical index ops).
  std::vector<std::string> collections;
  CollectScanCollections(plan, &collections);
  std::set<TypeId> types;
  for (const std::string& name : collections) {
    AQUA_ASSIGN_OR_RETURN(std::set<TypeId> in_coll,
                          TypesInCollection(db, name));
    types.insert(in_coll.begin(), in_coll.end());
  }

  std::vector<PredicateRef> preds;
  if (plan->pred != nullptr) preds.push_back(plan->pred);
  if (plan->anchor != nullptr) preds.push_back(plan->anchor);
  if (plan->tpattern != nullptr) {
    CollectTreePatternPreds(*plan->tpattern, &preds);
  }
  if (plan->lpattern.body != nullptr) {
    CollectListPatternPreds(*plan->lpattern.body, &preds);
  }
  AQUA_RETURN_IF_ERROR(ValidatePreds(db.store(), types, preds));

  for (const PlanRef& child : plan->children) {
    AQUA_RETURN_IF_ERROR(ValidatePlanPatterns(db, child));
  }
  return Status::OK();
}

}  // namespace aqua
