#include "query/cost.h"

#include <algorithm>
#include <cmath>

#include "obs/digest.h"
#include "obs/metrics.h"

namespace aqua {

namespace {

constexpr double kDefaultSelectSelectivity = 0.5;
constexpr double kDefaultMatchSelectivity = 0.2;

void CountListPattern(const ListPattern& lp, size_t* nodes, size_t* closures);

void CountTreePattern(const TreePattern& tp, size_t* nodes, size_t* closures) {
  ++*nodes;
  switch (tp.kind()) {
    case TreePattern::Kind::kNode:
      CountListPattern(*tp.children(), nodes, closures);
      return;
    case TreePattern::Kind::kStarAt:
    case TreePattern::Kind::kPlusAt:
      ++*closures;
      CountTreePattern(*tp.inner(), nodes, closures);
      return;
    case TreePattern::Kind::kAlt:
      ++*closures;  // disjunction also multiplies backtracking
      for (const auto& part : tp.alts()) {
        CountTreePattern(*part, nodes, closures);
      }
      return;
    case TreePattern::Kind::kLeaf:
    case TreePattern::Kind::kPoint:
      return;
    default:
      for (const auto& part : tp.alts()) {
        CountTreePattern(*part, nodes, closures);
      }
      return;
  }
}

void CountListPattern(const ListPattern& lp, size_t* nodes, size_t* closures) {
  ++*nodes;
  switch (lp.kind()) {
    case ListPattern::Kind::kStar:
    case ListPattern::Kind::kPlus:
      ++*closures;
      CountListPattern(*lp.inner(), nodes, closures);
      return;
    case ListPattern::Kind::kAlt:
      ++*closures;
      for (const auto& part : lp.parts()) {
        CountListPattern(*part, nodes, closures);
      }
      return;
    case ListPattern::Kind::kTreeAtom:
      CountTreePattern(*lp.tree_atom(), nodes, closures);
      return;
    default:
      for (const auto& part : lp.parts()) {
        CountListPattern(*part, nodes, closures);
      }
      return;
  }
}

double WorkFromCounts(size_t nodes, size_t closures) {
  double mult = std::pow(2.0, static_cast<double>(std::min<size_t>(closures, 5)));
  return static_cast<double>(nodes) * mult;
}

/// Clamps a heuristic estimate into the node's proved facts: the
/// out_collections guess must land inside the inferred cardinality
/// interval, and a provably-empty node outputs nothing. The heuristics
/// then never contradict the static analysis, and provable emptiness
/// propagates a zero prior up through every parent estimate.
CostEstimate ClampToFacts(CostEstimate est, const lint::AbsIntResult& facts,
                          const PlanRef& plan) {
  auto it = facts.facts.find(plan.get());
  if (it == facts.facts.end()) return est;
  const lint::PlanFacts& f = it->second;
  est.out_collections =
      std::max(est.out_collections, static_cast<double>(f.card.lo));
  if (f.card.bounded()) {
    est.out_collections =
        std::min(est.out_collections, static_cast<double>(f.card.hi));
  }
  if (f.nodes_hi != lint::CardInterval::kUnbounded) {
    est.out_nodes =
        std::min(est.out_nodes, static_cast<double>(f.nodes_hi));
  }
  if (f.card.provably_empty()) est.out_nodes = 0;
  return est;
}

}  // namespace

double CostModel::PatternWork(const TreePatternRef& tp) {
  if (tp == nullptr) return 1;
  size_t nodes = 0, closures = 0;
  CountTreePattern(*tp, &nodes, &closures);
  return WorkFromCounts(nodes, closures);
}

double CostModel::PatternWork(const AnchoredListPattern& lp) {
  if (lp.body == nullptr) return 1;
  size_t nodes = 0, closures = 0;
  CountListPattern(*lp.body, &nodes, &closures);
  return WorkFromCounts(nodes, closures);
}

double CostModel::SelectivityFor(const PlanRef& plan, double fallback) const {
  if (stats_ == nullptr) return fallback;
  double sel = 0;
  uint64_t calls = 0;
  if (stats_->LearnedSelectivity(obs::FingerprintPlan(plan), &sel, &calls) &&
      calls >= obs::StatsWarehouse::kMinConfidence) {
    AQUA_OBS_COUNT("cost.learned_hits", 1);
    return std::clamp(sel, 0.0, 1.0);
  }
  AQUA_OBS_COUNT("cost.learned_misses", 1);
  return fallback;
}

double CostModel::CandidatesFor(const PlanRef& plan, double fallback) const {
  if (stats_ == nullptr) return fallback;
  double cpp = 0;
  uint64_t calls = 0;
  if (stats_->LearnedCandidates(obs::FingerprintPlan(plan), &cpp, &calls) &&
      calls >= obs::StatsWarehouse::kMinConfidence) {
    AQUA_OBS_COUNT("cost.learned_hits", 1);
    return std::max(0.0, cpp);
  }
  AQUA_OBS_COUNT("cost.learned_misses", 1);
  return fallback;
}

Result<CostEstimate> CostModel::Estimate(const PlanRef& plan) const {
  // One abstract-interpretation pass at the root; its per-node facts clamp
  // every heuristic estimate below.
  lint::AbsIntResult facts;
  if (db_ != nullptr) facts = lint::AnalyzePlan(*db_, plan);
  return EstimateNode(plan, facts);
}

Result<CostEstimate> CostModel::EstimateNode(
    const PlanRef& plan, const lint::AbsIntResult& facts) const {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  CostEstimate est;
  switch (plan->op) {
    case PlanOp::kEmptySet:
    case PlanOp::kEmptyList: {
      // A constant empty result costs nothing, which is what makes the
      // empty-fold rewrite always profitable.
      est.cost = 0;
      est.out_collections = plan->op == PlanOp::kEmptyList ? 1 : 0;
      est.out_nodes = 0;
      return ClampToFacts(est, facts, plan);
    }
    case PlanOp::kScanTree: {
      AQUA_ASSIGN_OR_RETURN(const Tree* tree, db_->GetTree(plan->collection));
      est.cost = 1;
      est.out_collections = 1;
      est.out_nodes = static_cast<double>(tree->size());
      return ClampToFacts(est, facts, plan);
    }
    case PlanOp::kScanList: {
      AQUA_ASSIGN_OR_RETURN(const List* list, db_->GetList(plan->collection));
      est.cost = 1;
      est.out_collections = 1;
      est.out_nodes = static_cast<double>(list->size());
      return ClampToFacts(est, facts, plan);
    }
    case PlanOp::kTreeSelect:
    case PlanOp::kListSelect: {
      AQUA_ASSIGN_OR_RETURN(CostEstimate in, EstimateNode(plan->children[0], facts));
      double pred_size =
          plan->pred ? static_cast<double>(plan->pred->SizeInNodes()) : 1;
      est.cost = in.cost + in.out_nodes * pred_size;
      est.out_nodes =
          in.out_nodes * SelectivityFor(plan, kDefaultSelectSelectivity);
      est.out_collections = std::max(1.0, est.out_nodes * 0.1);
      return ClampToFacts(est, facts, plan);
    }
    case PlanOp::kTreeApply:
    case PlanOp::kListApply: {
      AQUA_ASSIGN_OR_RETURN(CostEstimate in, EstimateNode(plan->children[0], facts));
      est.cost = in.cost + in.out_nodes;
      est.out_nodes = in.out_nodes;
      est.out_collections = in.out_collections;
      return ClampToFacts(est, facts, plan);
    }
    case PlanOp::kTreeSubSelect:
    case PlanOp::kTreeSplit:
    case PlanOp::kTreeAllAnc:
    case PlanOp::kTreeAllDesc: {
      AQUA_ASSIGN_OR_RETURN(CostEstimate in, EstimateNode(plan->children[0], facts));
      double work = PatternWork(plan->tpattern);
      double sel = SelectivityFor(plan, kDefaultMatchSelectivity);
      est.cost = in.cost + in.out_nodes * work;
      // 0.25: observed collections-per-input-node runs about a quarter of
      // the node selectivity (the static 0.05 / 0.2 ratio, preserved when
      // the selectivity itself is learned).
      est.out_collections = std::max(1.0, in.out_nodes * sel * 0.25);
      est.out_nodes = in.out_nodes * sel;
      return ClampToFacts(est, facts, plan);
    }
    case PlanOp::kListSubSelect:
    case PlanOp::kListSplit:
    case PlanOp::kListAllAnc:
    case PlanOp::kListAllDesc: {
      AQUA_ASSIGN_OR_RETURN(CostEstimate in, EstimateNode(plan->children[0], facts));
      double work = PatternWork(plan->lpattern);
      double sel = SelectivityFor(plan, kDefaultMatchSelectivity);
      est.cost = in.cost + in.out_nodes * work;
      est.out_collections = std::max(1.0, in.out_nodes * sel * 0.25);
      est.out_nodes = in.out_nodes * sel;
      return ClampToFacts(est, facts, plan);
    }
    case PlanOp::kIndexedListSubSelect: {
      AQUA_ASSIGN_OR_RETURN(const List* list, db_->GetList(plan->collection));
      AQUA_ASSIGN_OR_RETURN(const AttributeIndex* index,
                            db_->indexes().Get(plan->collection, plan->attr));
      double n = static_cast<double>(list->size());
      double candidates = CandidatesFor(
          plan, plan->anchor ? index->Selectivity(*plan->anchor) * n : n);
      double work = PatternWork(plan->lpattern);
      est.cost = std::log2(n + 2) + candidates * work;
      est.out_collections = std::max(1.0, candidates * 0.5);
      est.out_nodes = candidates * work;
      return ClampToFacts(est, facts, plan);
    }
    case PlanOp::kIndexedSubSelect: {
      AQUA_ASSIGN_OR_RETURN(const Tree* tree, db_->GetTree(plan->collection));
      AQUA_ASSIGN_OR_RETURN(const AttributeIndex* index,
                            db_->indexes().Get(plan->collection, plan->attr));
      double n = static_cast<double>(tree->size());
      double candidates = CandidatesFor(
          plan, plan->anchor ? index->Selectivity(*plan->anchor) * n : n);
      double work = PatternWork(plan->tpattern);
      est.cost = std::log2(n + 2) + candidates * work;
      est.out_collections = std::max(1.0, candidates * 0.5);
      est.out_nodes = candidates * work;  // pessimistic piece size
      return ClampToFacts(est, facts, plan);
    }
  }
  return Status::Internal("unreachable in CostModel::Estimate");
}

}  // namespace aqua
