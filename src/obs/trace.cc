#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace aqua::obs {

void Trace::Clear() {
  spans_.clear();
  open_stack_.clear();
  have_epoch_ = false;
}

uint64_t Trace::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

size_t Trace::Open(std::string_view name) {
  if (!have_epoch_) {
    epoch_ = std::chrono::steady_clock::now();
    have_epoch_ = true;
  }
  SpanRecord rec;
  rec.name = std::string(name);
  rec.start_ns = NowNs();
  rec.parent = open_stack_.empty() ? SpanRecord::kNoParent
                                   : open_stack_.back();
  size_t idx = spans_.size();
  spans_.push_back(std::move(rec));
  open_stack_.push_back(idx);
  return idx;
}

void Trace::Close(size_t idx) {
  if (idx >= spans_.size()) return;
  spans_[idx].dur_ns = NowNs() - spans_[idx].start_ns;
  // Spans close in LIFO order (RAII), but be defensive about interleaving.
  if (!open_stack_.empty() && open_stack_.back() == idx) {
    open_stack_.pop_back();
  }
}

void Trace::Splice(const Trace& sub) {
  if (!enabled_ || sub.spans_.empty()) return;
  int64_t offset = 0;
  if (!have_epoch_) {
    epoch_ = sub.epoch_;
    have_epoch_ = true;
  } else {
    offset = std::chrono::duration_cast<std::chrono::nanoseconds>(sub.epoch_ -
                                                                  epoch_)
                 .count();
  }
  const size_t base = spans_.size();
  const size_t attach =
      open_stack_.empty() ? SpanRecord::kNoParent : open_stack_.back();
  for (const SpanRecord& s : sub.spans_) {
    SpanRecord copy = s;
    int64_t start = static_cast<int64_t>(s.start_ns) + offset;
    copy.start_ns = start > 0 ? static_cast<uint64_t>(start) : 0;
    copy.parent =
        s.parent == SpanRecord::kNoParent ? attach : base + s.parent;
    spans_.push_back(std::move(copy));
  }
}

void Trace::Attr(size_t idx, std::string_view key, int64_t value) {
  if (idx >= spans_.size()) return;
  spans_[idx].attrs.emplace_back(std::string(key), value);
}

std::string Trace::ToChromeJson(const Snapshot* counters) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const SpanRecord& s : spans_) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("ph").String("X");
    w.Key("ts").Double(static_cast<double>(s.start_ns) / 1e3);   // µs
    w.Key("dur").Double(static_cast<double>(s.dur_ns) / 1e3);    // µs
    w.Key("pid").Int(1);
    w.Key("tid").Int(1);
    if (!s.attrs.empty()) {
      w.Key("args").BeginObject();
      for (const auto& [key, value] : s.attrs) w.Key(key).Int(value);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  if (counters != nullptr) {
    w.Key("counters").BeginObject();
    for (const auto& [name, value] : counters->counters) {
      w.Key(name).Uint(value);
    }
    w.EndObject();
    w.Key("histograms").BeginObject();
    for (const HistogramSnapshot& h : counters->histograms) {
      w.Key(h.name).BeginObject();
      w.Key("count").Uint(h.count);
      w.Key("sum").Uint(h.sum);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndObject();
  return w.TakeString();
}

std::string Trace::ToTextReport() const {
  // Depth of each span follows from parent links; spans_ is in open order,
  // so a simple pass renders the tree.
  std::vector<size_t> depth(spans_.size(), 0);
  size_t name_width = 0;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent != SpanRecord::kNoParent) {
      depth[i] = depth[spans_[i].parent] + 1;
    }
    name_width = std::max(name_width, 2 * depth[i] + spans_[i].name.size());
  }
  std::string out;
  for (size_t i = 0; i < spans_.size(); ++i) {
    std::string line(2 * depth[i], ' ');
    line += spans_[i].name;
    line.append(name_width - line.size() + 2, ' ');
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%9.3f ms",
                  static_cast<double>(spans_[i].dur_ns) / 1e6);
    line += buf;
    if (!spans_[i].attrs.empty()) {
      line += "  [";
      for (size_t a = 0; a < spans_[i].attrs.size(); ++a) {
        if (a > 0) line += ' ';
        line += spans_[i].attrs[a].first;
        line += '=';
        line += std::to_string(spans_[i].attrs[a].second);
      }
      line += ']';
    }
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace aqua::obs
