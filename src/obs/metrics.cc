#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "obs/json.h"

namespace aqua::obs {

std::atomic<bool> Registry::enabled_{true};

size_t Histogram::BucketOf(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));
}

uint64_t Histogram::BucketLowerBound(size_t b) {
  return b <= 1 ? 0 : (uint64_t{1} << (b - 1));
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

uint64_t Snapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t Snapshot::GaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

Snapshot Snapshot::DeltaSince(const Snapshot& base) const {
  auto minus = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  Snapshot delta;
  delta.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    delta.counters.emplace_back(name, minus(value, base.CounterValue(name)));
  }
  // Gauges are levels, not rates: the delta of a window is the level at the
  // window's end, never a (meaningless, possibly negative) difference.
  delta.gauges = gauges;
  for (const HistogramSnapshot& h : histograms) {
    const HistogramSnapshot* b = nullptr;
    for (const HistogramSnapshot& cand : base.histograms) {
      if (cand.name == h.name) {
        b = &cand;
        break;
      }
    }
    HistogramSnapshot d;
    d.name = h.name;
    d.count = minus(h.count, b == nullptr ? 0 : b->count);
    d.sum = minus(h.sum, b == nullptr ? 0 : b->sum);
    for (const auto& [bucket, cnt] : h.buckets) {
      uint64_t prev = 0;
      if (b != nullptr) {
        for (const auto& [bb, bc] : b->buckets) {
          if (bb == bucket) {
            prev = bc;
            break;
          }
        }
      }
      uint64_t diff = minus(cnt, prev);
      if (diff > 0) d.buckets.emplace_back(bucket, diff);
    }
    delta.histograms.push_back(std::move(d));
  }
  return delta;
}

std::string Snapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name).Uint(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) {
    w.Key(name).Int(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const HistogramSnapshot& h : histograms) {
    w.Key(h.name).BeginObject();
    w.Key("count").Uint(h.count);
    w.Key("sum").Uint(h.sum);
    w.Key("buckets").BeginObject();
    for (const auto& [bucket, cnt] : h.buckets) {
      // Keyed by the bucket's inclusive lower bound, the natural axis for
      // a log-scale histogram.
      w.Key(std::to_string(Histogram::BucketLowerBound(bucket))).Uint(cnt);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string Snapshot::ToText() const {
  size_t width = 0;
  for (const auto& [name, value] : counters) width = std::max(width, name.size());
  for (const auto& [name, value] : gauges) width = std::max(width, name.size());
  for (const HistogramSnapshot& h : histograms) width = std::max(width, h.name.size());
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name;
    out.append(width - name.size() + 2, ' ');
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, value] : gauges) {
    out += name;
    out.append(width - name.size() + 2, ' ');
    out += std::to_string(value);
    out += '\n';
  }
  for (const HistogramSnapshot& h : histograms) {
    out += h.name;
    out.append(width - h.name.size() + 2, ' ');
    char buf[96];
    std::snprintf(buf, sizeof(buf), "count=%llu sum=%llu mean=%.1f",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  h.count == 0 ? 0.0
                               : static_cast<double>(h.sum) /
                                     static_cast<double>(h.count));
    out += buf;
    out += '\n';
  }
  return out;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // intentionally leaked
  return *instance;
}

Registry::Registry() {
  // Pre-register the well-known metrics so snapshots (and the benchmark
  // JSON records built from them) always carry the full schema, even in a
  // process that never exercised a given layer. The naming scheme is
  // documented in docs/OBSERVABILITY.md.
  for (const char* name :
       {"pattern.nfa_steps", "pattern.dfa_hits", "pattern.dfa_misses",
        "pattern.nfa_prefilter_rejects", "pattern.list_match_calls",
        "pattern.list_steps", "pattern.tree_match_calls",
        "pattern.tree_steps", "pattern.tree_memo_hits",
        "pattern.alphabet_preds", "index.probes",
        "index.candidates", "algebra.structural_nodes_visited",
        "exec.executes", "exec.operators_evaluated", "exec.trees_processed",
        "exec.lists_processed", "exec.batched_patterns",
        "exec.batch_scan_rows", "stats.harvests", "stats.evictions",
        "cost.learned_hits", "cost.learned_misses"}) {
    counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)));
  }
  for (const char* name :
       {"exec.pool_workers_active", "exec.pool_queue_depth",
        "obs.recorder_occupancy", "stats.records_live"}) {
    gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name)));
  }
  for (const char* name :
       {"exec.operator_ns", "exec.execute_ns", "index.candidates_per_probe",
        "pattern.tree_steps_per_call"}) {
    histograms_.emplace(name, std::unique_ptr<Histogram>(new Histogram(name)));
  }
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name)))
             .first;
  }
  return it->second.get();
}

Snapshot Registry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = hist->count();
    h.sum = hist->sum();
    for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      uint64_t c = hist->bucket(b);
      if (c > 0) h.buckets.emplace_back(b, c);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace aqua::obs
