#include "obs/recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/json.h"

namespace aqua::obs {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* KindName(uint32_t kind) {
  switch (static_cast<FlightEventKind>(kind)) {
    case FlightEventKind::kExecute:
      return "execute";
    case FlightEventKind::kMorsel:
      return "morsel";
  }
  return "?";
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance = new FlightRecorder();  // leaked
  return *instance;
}

FlightRecorder::FlightRecorder() : epoch_ns_(SteadyNowNs()) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at init.
  const char* ms = std::getenv("AQUA_SLOW_QUERY_MS");
  if (ms != nullptr && *ms != '\0') {
    double v = std::strtod(ms, nullptr);
    if (v > 0) {
      slow_threshold_ns_.store(static_cast<uint64_t>(v * 1e6),
                               std::memory_order_relaxed);
    }
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at init.
  const char* path = std::getenv("AQUA_SLOW_QUERY_LOG");
  slow_log_path_ = path != nullptr && *path != '\0' ? path
                                                    : "aqua_slow_queries.log";
}

FlightRecorder::Ring* FlightRecorder::RegisterRing() {
  MutexLock lock(mu_);
  rings_.push_back(std::make_unique<Ring>());
  return rings_.back().get();
}

FlightRecorder::Ring* FlightRecorder::LocalRing() {
  // One ring per recording thread for the life of the process. Pool workers
  // never exit; if a transient thread does, its ring simply stops growing
  // and its retained events age out of the dump naturally.
  thread_local Ring* ring = RegisterRing();
  return ring;
}

void FlightRecorder::Record(FlightEvent e) {
  Ring* ring = LocalRing();
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  e.t_ns = SteadyNowNs() - epoch_ns_;

  uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[head % kRingCapacity];

  uint64_t words[kEventWords];
  std::memcpy(words, &e, sizeof(e));

  uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);  // odd: in progress
  for (size_t i = 0; i < kEventWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.version.store(v + 2, std::memory_order_release);  // even: stable
  ring->head.store(head + 1, std::memory_order_release);

  if (head < kRingCapacity) {
    uint64_t retained =
        retained_.fetch_add(1, std::memory_order_relaxed) + 1;
    AQUA_OBS_GAUGE_SET("obs.recorder_occupancy",
                       static_cast<int64_t>(retained));
  }
}

std::vector<FlightEvent> FlightRecorder::Dump() const {
  std::vector<const Ring*> rings;
  {
    MutexLock lock(mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  std::vector<FlightEvent> out;
  for (const Ring* ring : rings) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t n = std::min<uint64_t>(head, kRingCapacity);
    for (uint64_t i = head - n; i < head; ++i) {
      const Slot& slot = ring->slots[i % kRingCapacity];
      uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 % 2 != 0) continue;  // mid-write; skip this slot
      uint64_t words[kEventWords];
      for (size_t w = 0; w < kEventWords; ++w) {
        words[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.version.load(std::memory_order_relaxed) != v1) continue;
      FlightEvent e;
      std::memcpy(&e, words, sizeof(e));
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string FlightRecorder::ToText(size_t max_events) const {
  std::vector<FlightEvent> events = Dump();
  size_t start = events.size() > max_events ? events.size() - max_events : 0;
  std::string out =
      "seq        t_ms      kind     wall_ms   fingerprint       thr mrsl "
      "max_mrsl_ms tree_steps list_steps probes nodes      qid    cpu_ms   "
      "peak_kb  code\n";
  for (size_t i = start; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%-10llu %-9.1f %-8s %-9.3f %016llx  %-3u %-4u %-11.3f %-10llu "
        "%-10llu %-6llu %-9llu %-6llu %-8.1f %-8llu %u\n",
        static_cast<unsigned long long>(e.seq),
        static_cast<double>(e.t_ns) / 1e6, KindName(e.kind),
        static_cast<double>(e.wall_ns) / 1e6,
        static_cast<unsigned long long>(e.fingerprint), e.threads, e.morsels,
        static_cast<double>(e.max_morsel_ns) / 1e6,
        static_cast<unsigned long long>(e.tree_steps),
        static_cast<unsigned long long>(e.list_steps),
        static_cast<unsigned long long>(e.index_probes),
        static_cast<unsigned long long>(e.nodes_visited),
        static_cast<unsigned long long>(e.query_id),
        static_cast<double>(e.cpu_ns) / 1e6,
        static_cast<unsigned long long>(e.mem_peak / 1024), e.code);
    out += buf;
  }
  if (events.empty()) out += "(no events recorded)\n";
  return out;
}

std::string FlightRecorder::ToJson(size_t max_events) const {
  std::vector<FlightEvent> events = Dump();
  size_t start = events.size() > max_events ? events.size() - max_events : 0;
  JsonWriter w;
  w.BeginObject();
  w.Key("retained").Uint(retained());
  w.Key("events").BeginArray();
  for (size_t i = start; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(e.fingerprint));
    w.BeginObject();
    w.Key("seq").Uint(e.seq);
    w.Key("t_ns").Uint(e.t_ns);
    w.Key("kind").String(KindName(e.kind));
    w.Key("ok").Bool(e.ok != 0);
    w.Key("fingerprint").String(fp);
    w.Key("wall_ns").Uint(e.wall_ns);
    w.Key("threads").Uint(e.threads);
    w.Key("morsels").Uint(e.morsels);
    w.Key("max_morsel_ns").Uint(e.max_morsel_ns);
    w.Key("tree_steps").Uint(e.tree_steps);
    w.Key("list_steps").Uint(e.list_steps);
    w.Key("index_probes").Uint(e.index_probes);
    w.Key("nodes_visited").Uint(e.nodes_visited);
    w.Key("query_id").Uint(e.query_id);
    w.Key("cpu_ns").Uint(e.cpu_ns);
    w.Key("mem_peak").Uint(e.mem_peak);
    w.Key("code").Uint(e.code);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  for (auto& ring : rings_) {
    // Writers may be active; bump each slot through a full odd/even cycle
    // so concurrent readers discard it, then reset the head.
    for (Slot& slot : ring->slots) {
      uint64_t v = slot.version.load(std::memory_order_relaxed);
      slot.version.store(v + 2, std::memory_order_release);
    }
    ring->head.store(0, std::memory_order_release);
  }
  retained_.store(0, std::memory_order_relaxed);
  AQUA_OBS_GAUGE_SET("obs.recorder_occupancy", 0);
}

size_t FlightRecorder::retained() const {
  return static_cast<size_t>(retained_.load(std::memory_order_relaxed));
}

size_t FlightRecorder::rings() const {
  MutexLock lock(mu_);
  return rings_.size();
}

void FlightRecorder::set_slow_query_log_path(std::string path) {
  MutexLock lock(mu_);
  slow_log_path_ = std::move(path);
}

std::string FlightRecorder::slow_query_log_path() const {
  MutexLock lock(mu_);
  return slow_log_path_;
}

void FlightRecorder::AppendSlowQuery(uint64_t wall_ns, uint64_t fingerprint,
                                     std::string_view plan_text,
                                     std::string_view trace_report,
                                     const Snapshot& delta) {
  MutexLock lock(mu_);
  std::ofstream out(slow_log_path_, std::ios::app);
  if (!out) return;  // the log is best-effort; never fail the query
  char head[160];
  std::snprintf(head, sizeof(head),
                "--- slow query: %.3f ms (threshold %.3f ms) fingerprint "
                "%016llx ---\n",
                static_cast<double>(wall_ns) / 1e6,
                static_cast<double>(
                    slow_threshold_ns_.load(std::memory_order_relaxed)) /
                    1e6,
                static_cast<unsigned long long>(fingerprint));
  out << head << "plan:\n" << plan_text;
  if (!plan_text.empty() && plan_text.back() != '\n') out << '\n';
  if (!trace_report.empty()) {
    out << "spans:\n" << trace_report;
    if (trace_report.back() != '\n') out << '\n';
  }
  out << "counters:\n" << delta.ToText() << "\n";
  slow_logged_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace aqua::obs
