#ifndef AQUA_OBS_QUERY_CONTEXT_H_
#define AQUA_OBS_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace aqua::obs {

#ifndef AQUA_OBS_DISABLED

/// Per-query lifecycle state: a monotonic query id, an optional deadline
/// and memory budget, a cooperative cancellation token, and the resource
/// counters (CPU-ns, current/peak bytes, rows, tree/list nodes) that feed
/// the live task table, the digest table, and the flight recorder.
///
/// One QueryContext lives on the stack of `Executor::Execute` for exactly
/// one execution. The executor installs it thread-locally (`Scope`) on the
/// query thread, and the morsel scheduler re-installs it on every pool
/// worker that participates in a fan-out, so the matcher inner loops reach
/// it via `Current()` without any algebra-layer signature changes.
///
/// Cancellation is cooperative: `Cancel` (from any thread — the shell's
/// `\kill`, the metricsd watchdog, a deadline check) only sets a flag;
/// workers observe it at their next `CheckPoint()` — every fan-out item
/// and every `kCheckStride` matcher steps — and unwind with
/// `kCancelled` / `kDeadlineExceeded` through the normal Status paths.
class QueryContext {
 public:
  /// Matcher inner loops call `CheckPoint` once per this many steps; one
  /// check is a relaxed flag load plus a steady-clock read, so the stride
  /// keeps the overhead invisible while bounding cancellation latency to
  /// well under the 50 ms budget even on slow (sanitizer) builds.
  static constexpr size_t kCheckStride = 512;

  QueryContext();
  ~QueryContext();
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Process-unique monotonic id (1, 2, ...).
  uint64_t id() const { return id_; }

  // --- limits ---------------------------------------------------------

  /// Arms the deadline `timeout_ns` from now (0 disarms).
  void set_deadline_after_ns(uint64_t timeout_ns);
  /// Absolute deadline on the `NowNs` clock; 0 when unarmed.
  uint64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }
  void set_mem_limit_bytes(uint64_t bytes) {
    mem_limit_bytes_ = bytes;
  }
  uint64_t mem_limit_bytes() const { return mem_limit_bytes_; }

  // --- cancellation ---------------------------------------------------

  /// Requests cancellation with `code` (`kCancelled` or
  /// `kDeadlineExceeded`); the first caller's code and detail win.
  /// Thread-safe, callable from any thread.
  void Cancel(StatusCode code, std::string_view detail);

  /// True once `Cancel` was called (the cheap probe for skip fast-paths).
  bool cancel_requested() const {
    return cancel_code_.load(std::memory_order_relaxed) !=
           static_cast<uint32_t>(StatusCode::kOk);
  }

  /// The cooperative cancellation probe: checks the cancel flag, then the
  /// deadline, then the memory budget. OK while the query may continue;
  /// otherwise the `kCancelled` / `kDeadlineExceeded` status to unwind
  /// with. Called per fan-out item and per `kCheckStride` matcher steps.
  Status CheckPoint();

  /// The status `CheckPoint` reports once cancelled (OK if not cancelled).
  Status CancelStatus() const;

  // --- resource accounting -------------------------------------------

  void AddCpuNs(uint64_t ns) {
    cpu_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddRows(uint64_t n) {
    rows_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNodes(uint64_t n) {
    nodes_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Adjusts the live-bytes estimate (positive on materialization,
  /// negative on release) and maintains the peak. Mirrored into the
  /// process-wide `query.mem_bytes` gauge.
  void AddMem(int64_t delta);

  uint64_t cpu_ns() const { return cpu_ns_.load(std::memory_order_relaxed); }
  uint64_t rows() const { return rows_.load(std::memory_order_relaxed); }
  uint64_t nodes() const { return nodes_.load(std::memory_order_relaxed); }
  uint64_t mem_bytes() const {
    int64_t v = mem_bytes_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }
  uint64_t mem_peak_bytes() const {
    return mem_peak_bytes_.load(std::memory_order_relaxed);
  }

  // --- progress -------------------------------------------------------

  void AddMorselsTotal(size_t n) {
    morsels_total_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddMorselsDone(size_t n) {
    morsels_done_.fetch_add(n, std::memory_order_relaxed);
  }
  size_t morsels_total() const {
    return morsels_total_.load(std::memory_order_relaxed);
  }
  size_t morsels_done() const {
    return morsels_done_.load(std::memory_order_relaxed);
  }
  /// `name` must be a static string (a `PlanOpToString` result).
  void set_current_op(const char* name) {
    current_op_.store(name, std::memory_order_relaxed);
  }
  const char* current_op() const {
    return current_op_.load(std::memory_order_relaxed);
  }

  // --- descriptor (written by the executor before registration) -------

  void set_fingerprint(uint64_t fp) { fingerprint_ = fp; }
  uint64_t fingerprint() const { return fingerprint_; }
  /// One-line plan description for the task table; immutable once the
  /// context is registered, so snapshots read it without a copy race.
  void set_plan_text(std::string text) { plan_text_ = std::move(text); }
  const std::string& plan_text() const { return plan_text_; }
  void set_threads(uint32_t n) { threads_ = n; }
  uint32_t threads() const { return threads_; }
  /// Epoch of the store snapshot this query reads against (0 until the
  /// executor installs the view); shown by `\tasks` / `\snapshot`.
  void set_pinned_epoch(uint64_t e) { pinned_epoch_ = e; }
  uint64_t pinned_epoch() const { return pinned_epoch_; }
  uint64_t started_ns() const { return started_ns_; }

  // --- clocks ---------------------------------------------------------

  /// Steady nanoseconds since process start (the deadline clock).
  static uint64_t NowNs();
  /// CPU nanoseconds consumed by the calling thread
  /// (CLOCK_THREAD_CPUTIME_ID).
  static uint64_t ThreadCpuNs();

  // --- thread-local installation --------------------------------------

  /// The context installed on this thread, or null outside a query.
  static QueryContext* Current();

  /// RAII installation of a context on the current thread (the executor
  /// on the query thread; the morsel scheduler on each pool worker).
  /// Nests: the previous context is restored on destruction.
  class Scope {
   public:
    explicit Scope(QueryContext* q);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    QueryContext* prev_;
  };

 private:
  uint64_t id_ = 0;
  uint64_t started_ns_ = 0;
  uint64_t fingerprint_ = 0;
  std::string plan_text_;
  uint32_t threads_ = 1;
  uint64_t pinned_epoch_ = 0;
  uint64_t mem_limit_bytes_ = 0;

  std::atomic<uint64_t> deadline_ns_{0};
  std::atomic<uint32_t> cancel_code_{0};  // StatusCode; 0 = not cancelled
  mutable std::mutex cancel_mu_;          // guards cancel_detail_
  std::string cancel_detail_;

  std::atomic<uint64_t> cpu_ns_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> nodes_{0};
  std::atomic<int64_t> mem_bytes_{0};
  std::atomic<uint64_t> mem_peak_bytes_{0};
  std::atomic<size_t> morsels_total_{0};
  std::atomic<size_t> morsels_done_{0};
  std::atomic<const char*> current_op_{nullptr};
};

/// `AQUA_QUERY_TIMEOUT_MS` as nanoseconds (0 when unset/invalid). Read per
/// call so tests can flip it with setenv.
uint64_t DefaultQueryTimeoutNs();
/// `AQUA_QUERY_MEM_LIMIT_MB` as bytes (0 when unset/invalid).
uint64_t DefaultQueryMemLimitBytes();

#else  // AQUA_OBS_DISABLED

/// Compiled-out stub: every hook is an empty inline, `Current()` is
/// constant null, so the lifecycle checkpoints in the matchers and the
/// fan-out vanish entirely (the CI no-obs job proves tier-1 tests pass
/// against this shape).
class QueryContext {
 public:
  static constexpr size_t kCheckStride = 512;

  uint64_t id() const { return 0; }
  void set_deadline_after_ns(uint64_t) {}
  uint64_t deadline_ns() const { return 0; }
  void set_mem_limit_bytes(uint64_t) {}
  uint64_t mem_limit_bytes() const { return 0; }
  void Cancel(StatusCode, std::string_view) {}
  bool cancel_requested() const { return false; }
  Status CheckPoint() { return Status::OK(); }
  Status CancelStatus() const { return Status::OK(); }
  void AddCpuNs(uint64_t) {}
  void AddRows(uint64_t) {}
  void AddNodes(uint64_t) {}
  void AddMem(int64_t) {}
  uint64_t cpu_ns() const { return 0; }
  uint64_t rows() const { return 0; }
  uint64_t nodes() const { return 0; }
  uint64_t mem_bytes() const { return 0; }
  uint64_t mem_peak_bytes() const { return 0; }
  void AddMorselsTotal(size_t) {}
  void AddMorselsDone(size_t) {}
  size_t morsels_total() const { return 0; }
  size_t morsels_done() const { return 0; }
  void set_current_op(const char*) {}
  const char* current_op() const { return nullptr; }
  void set_fingerprint(uint64_t) {}
  uint64_t fingerprint() const { return 0; }
  void set_plan_text(std::string) {}
  const std::string& plan_text() const {
    static const std::string kEmpty;
    return kEmpty;
  }
  void set_threads(uint32_t) {}
  uint32_t threads() const { return 1; }
  void set_pinned_epoch(uint64_t) {}
  uint64_t pinned_epoch() const { return 0; }
  uint64_t started_ns() const { return 0; }
  static uint64_t NowNs() { return 0; }
  static uint64_t ThreadCpuNs() { return 0; }
  static QueryContext* Current() { return nullptr; }

  class Scope {
   public:
    explicit Scope(QueryContext*) {}
  };
};

inline uint64_t DefaultQueryTimeoutNs() { return 0; }
inline uint64_t DefaultQueryMemLimitBytes() { return 0; }

#endif  // AQUA_OBS_DISABLED

}  // namespace aqua::obs

#endif  // AQUA_OBS_QUERY_CONTEXT_H_
