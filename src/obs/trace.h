#ifndef AQUA_OBS_TRACE_H_
#define AQUA_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace aqua::obs {

/// One closed (or still-open) span of a trace: a named interval plus its
/// position in the span tree and optional integer attributes.
struct SpanRecord {
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  std::string name;
  uint64_t start_ns = 0;  ///< relative to the trace epoch (first span)
  uint64_t dur_ns = 0;
  size_t parent = kNoParent;
  std::vector<std::pair<std::string, int64_t>> attrs;
};

/// An in-memory span tree for one unit of work (one `Executor::Execute`,
/// one shell command, ...). Spans are appended by RAII `Span` objects;
/// nesting follows construction order, so the tree mirrors the dynamic
/// call structure.
///
/// Thread model: a Trace is single-threaded — one Trace belongs to one
/// thread at a time. Parallel sections therefore never write into a shared
/// Trace concurrently; instead each worker records into its own private
/// buffer Trace, and after the fan-out joins the caller stitches the
/// buffers into the query trace with `Splice` in a deterministic order
/// (see `exec/morsel.h`).
class Trace {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void Clear();
  bool empty() const { return spans_.empty(); }
  size_t size() const { return spans_.size(); }
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Appends a copy of `sub`'s span tree under the currently open span (or
  /// at the root when none is open). `sub`'s timestamps are rebased from
  /// its epoch onto this trace's epoch, so absolute timing is preserved in
  /// the stitched timeline. Used to merge per-worker span buffers after a
  /// parallel fan-out; call only from the thread that owns this trace.
  void Splice(const Trace& sub);

  /// Chrome trace-event JSON (load via chrome://tracing or Perfetto):
  /// `{"traceEvents": [...], "displayTimeUnit": "ms"}`. When `counters` is
  /// given it is embedded as a top-level `"counters"`/`"histograms"` pair,
  /// so one file carries both the span tree and the metric deltas.
  std::string ToChromeJson(const Snapshot* counters = nullptr) const;

  /// Indented text report (children under parents), e.g.
  ///
  ///   Execute            0.431 ms
  ///     TreeSubSelect    0.402 ms  [out=7]
  ///       ScanTree       0.013 ms  [out=8000]
  std::string ToTextReport() const;

 private:
  friend class Span;

  size_t Open(std::string_view name);
  void Close(size_t idx);
  void Attr(size_t idx, std::string_view key, int64_t value);
  uint64_t NowNs() const;

  std::vector<SpanRecord> spans_;
  std::vector<size_t> open_stack_;
  std::chrono::steady_clock::time_point epoch_;
  bool have_epoch_ = false;
  bool enabled_ = false;
};

/// RAII scoped timer: the single timing idiom of the codebase.
///
/// Always measures its own lifetime (`ElapsedMs`/`ElapsedNs` work
/// unconditionally, replacing hand-rolled steady_clock arithmetic); when
/// constructed against an enabled `Trace` it additionally records a span in
/// that trace's tree. Pass a null trace for a pure scoped timer.
class Span {
 public:
  Span(Trace* trace, std::string_view name)
      : start_(std::chrono::steady_clock::now()) {
    if (trace != nullptr && trace->enabled()) {
      trace_ = trace;
      idx_ = trace->Open(name);
    }
  }
  ~Span() {
    if (trace_ != nullptr) trace_->Close(idx_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an integer attribute to the span (no-op without a trace).
  void AddAttr(std::string_view key, int64_t value) {
    if (trace_ != nullptr) trace_->Attr(idx_, key, value);
  }

  uint64_t ElapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  double ElapsedMs() const {
    return static_cast<double>(ElapsedNs()) / 1e6;
  }

 private:
  Trace* trace_ = nullptr;
  size_t idx_ = SpanRecord::kNoParent;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aqua::obs

#endif  // AQUA_OBS_TRACE_H_
