#ifndef AQUA_OBS_OBS_H_
#define AQUA_OBS_OBS_H_

/// \file
/// Umbrella header for `aqua::obs`, the cross-cutting observability layer:
///
///  * metrics.h  — named counters, gauges + log-scale histograms in a
///    process-wide registry (`AQUA_OBS_COUNT` / `AQUA_OBS_RECORD` /
///    `AQUA_OBS_GAUGE_*` instrumentation macros, snapshots, JSON)
///  * trace.h    — RAII `Span` scoped timers forming a span tree per unit
///    of work, exportable as Chrome-trace JSON or an indented text report
///  * recorder.h — always-on flight recorder (per-thread lock-free event
///    rings) + the slow-query log
///  * digest.h   — per-plan-shape query digest table keyed by the
///    normalized-plan fingerprint, with log-bucket latency quantiles
///  * export.h   — OpenMetrics text exposition + the embedded scrape
///    endpoint (`MetricsHttpServer`)
///  * stats.h    — runtime statistics warehouse: per-op observed
///    cardinalities and learned selectivities fed back into the cost model
///  * json.h     — the minimal JSON writer the above share
///
/// See docs/OBSERVABILITY.md for the metric naming scheme and how the
/// counters map onto the paper's §4 cost-model terms.

#include "obs/digest.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/stats.h"
#include "obs/trace.h"

#endif  // AQUA_OBS_OBS_H_
