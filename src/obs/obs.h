#ifndef AQUA_OBS_OBS_H_
#define AQUA_OBS_OBS_H_

/// \file
/// Umbrella header for `aqua::obs`, the cross-cutting observability layer:
///
///  * metrics.h — named counters + log-scale histograms in a process-wide
///    registry (`AQUA_OBS_COUNT` / `AQUA_OBS_RECORD` instrumentation
///    macros, snapshots, JSON serialization)
///  * trace.h   — RAII `Span` scoped timers forming a span tree per unit
///    of work, exportable as Chrome-trace JSON or an indented text report
///  * json.h    — the minimal JSON writer both of the above share
///
/// See docs/OBSERVABILITY.md for the metric naming scheme and how the
/// counters map onto the paper's §4 cost-model terms.

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#endif  // AQUA_OBS_OBS_H_
