#ifndef AQUA_OBS_DIGEST_H_
#define AQUA_OBS_DIGEST_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "query/plan.h"

namespace aqua::obs {

/// FNV-1a over `s` (the digest fingerprint hash).
uint64_t Fnv1a(std::string_view s);

/// Renders `plan` in a normalized form suitable for digest keying: the
/// operator tree, collection names, and pattern/predicate *shapes* are
/// kept; every comparison constant is elided to `$` (à la
/// pg_stat_statements), so `{age > 60}` and `{age > 21}` normalize — and
/// therefore digest — identically, while `{age > $}` vs `{name == $}` stay
/// distinct.
std::string NormalizePlan(const PlanRef& plan);

/// `Fnv1a(NormalizePlan(plan))`.
uint64_t FingerprintPlan(const PlanRef& plan);

/// Estimates the `q`-quantile (0 < q < 1) of a sample set summarized by
/// log-scale bucket counts (the 65-bucket scheme of `Histogram`): finds the
/// bucket holding the target rank and interpolates linearly inside its
/// value range. By construction the estimate lands inside the correct
/// bucket, i.e. within one power of two of the exact sample quantile.
double EstimateQuantile(const std::array<uint64_t, Histogram::kNumBuckets>& buckets,
                        uint64_t count, double q);

/// One row of the digest table, as copied out by `Rows`.
struct DigestRow {
  uint64_t fingerprint = 0;
  std::string text;  ///< normalized plan (first-seen rendering)
  uint64_t calls = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};

  double mean_ns() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(calls);
  }
  double p50_ns() const { return EstimateQuantile(buckets, calls, 0.50); }
  double p95_ns() const { return EstimateQuantile(buckets, calls, 0.95); }
  double p99_ns() const { return EstimateQuantile(buckets, calls, 0.99); }
};

/// Process-wide accumulator of per-plan-shape execution statistics, keyed
/// by the normalized-plan fingerprint (the pg_stat_statements idea applied
/// to AQUA plans). `Record` is one mutex acquisition plus a handful of
/// integer updates — cheap next to any query — and is called by
/// `Executor::Execute` on every run, so the table is always on.
class DigestTable {
 public:
  static DigestTable& Global();

  /// Accumulates one execution of the plan shape `fingerprint` (whose
  /// normalized rendering is `text` — stored on first sight) that took
  /// `wall_ns`.
  void Record(uint64_t fingerprint, std::string_view text, uint64_t wall_ns);

  /// Copies the table out, sorted by total time descending.
  std::vector<DigestRow> Rows() const;

  /// The row for `fingerprint`; calls == 0 when absent.
  DigestRow Row(uint64_t fingerprint) const;

  /// Aligned table: fingerprint, calls, total/mean/p50/p95/p99/max ms, text.
  std::string ToText(size_t max_rows = 32) const;
  /// `{"digests":[{...}...]}`, sorted by total time descending.
  std::string ToJson(size_t max_rows = 256) const;

  void Reset();
  size_t size() const;

 private:
  struct Entry {
    std::string text;
    uint64_t calls = 0;
    uint64_t total_ns = 0;
    uint64_t min_ns = 0;
    uint64_t max_ns = 0;
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};
  };

  DigestTable() = default;

  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;
};

}  // namespace aqua::obs

#endif  // AQUA_OBS_DIGEST_H_
