#ifndef AQUA_OBS_DIGEST_H_
#define AQUA_OBS_DIGEST_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "query/plan.h"

namespace aqua::obs {

/// FNV-1a over `s` (the digest fingerprint hash).
uint64_t Fnv1a(std::string_view s);

/// Renders `plan` in a normalized form suitable for digest keying: the
/// operator tree, collection names, and pattern/predicate *shapes* are
/// kept; every comparison constant is elided to `$` (à la
/// pg_stat_statements), so `{age > 60}` and `{age > 21}` normalize — and
/// therefore digest — identically, while `{age > $}` vs `{name == $}` stay
/// distinct.
std::string NormalizePlan(const PlanRef& plan);

/// `Fnv1a(NormalizePlan(plan))`.
uint64_t FingerprintPlan(const PlanRef& plan);

/// Estimates the `q`-quantile (0 < q < 1) of a sample set summarized by
/// log-scale bucket counts (the 65-bucket scheme of `Histogram`): finds the
/// bucket holding the target rank and interpolates linearly inside its
/// value range. By construction the estimate lands inside the correct
/// bucket, i.e. within one power of two of the exact sample quantile.
double EstimateQuantile(const std::array<uint64_t, Histogram::kNumBuckets>& buckets,
                        uint64_t count, double q);

/// One row of the digest table, as copied out by `Rows`.
struct DigestRow {
  uint64_t fingerprint = 0;
  std::string text;  ///< normalized plan (first-seen rendering)
  uint64_t calls = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
  /// Largest per-query peak-memory estimate seen for this shape.
  uint64_t peak_mem_bytes = 0;
  /// Executions that ended kCancelled / kDeadlineExceeded.
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  /// Executions that committed a new store version (advanced the epoch).
  uint64_t store_commits = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};

  double mean_ns() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(calls);
  }
  double p50_ns() const { return EstimateQuantile(buckets, calls, 0.50); }
  double p95_ns() const { return EstimateQuantile(buckets, calls, 0.95); }
  double p99_ns() const { return EstimateQuantile(buckets, calls, 0.99); }
};

/// Process-wide accumulator of per-plan-shape execution statistics, keyed
/// by the normalized-plan fingerprint (the pg_stat_statements idea applied
/// to AQUA plans). `Record` is one mutex acquisition plus a handful of
/// integer updates — cheap next to any query — and is called by
/// `Executor::Execute` on every run, so the table is always on.
///
/// The table is bounded: past `capacity()` distinct shapes (default 4096,
/// override via `AQUA_DIGEST_CAP` or `set_capacity`) recording a *new*
/// fingerprint evicts the least-recently-updated row, so a workload that
/// generates unbounded plan shapes cannot grow the table without limit.
class DigestTable {
 public:
  /// A standalone table (tests); `capacity` 0 means the default policy
  /// (`AQUA_DIGEST_CAP` when set and positive, else 4096).
  explicit DigestTable(size_t capacity = 0);

  static DigestTable& Global();

  /// Accumulates one execution of the plan shape `fingerprint` (whose
  /// normalized rendering is `text` — stored on first sight) that took
  /// `wall_ns`, peaked at `mem_peak_bytes` of estimated live data, and
  /// finished with `code` (kCancelled / kDeadlineExceeded bump the
  /// corresponding outcome counters). `store_commit` marks an execution
  /// that committed a new store version.
  void Record(uint64_t fingerprint, std::string_view text, uint64_t wall_ns,
              uint64_t mem_peak_bytes = 0, StatusCode code = StatusCode::kOk,
              bool store_commit = false) AQUA_EXCLUDES(mu_);

  /// Copies the table out, sorted by total time descending.
  std::vector<DigestRow> Rows() const AQUA_EXCLUDES(mu_);

  /// The row for `fingerprint`; calls == 0 when absent.
  DigestRow Row(uint64_t fingerprint) const AQUA_EXCLUDES(mu_);

  /// Aligned table: fingerprint, calls, total/mean/p50/p95/p99/max ms, text.
  std::string ToText(size_t max_rows = 32) const;
  /// `{"digests":[{...}...]}`, sorted by total time descending.
  std::string ToJson(size_t max_rows = 256) const;

  void Reset() AQUA_EXCLUDES(mu_);
  size_t size() const AQUA_EXCLUDES(mu_);

  /// Changes the row cap, evicting least-recently-updated rows immediately
  /// if the table is already over the new cap. `cap` 0 restores the
  /// default policy.
  void set_capacity(size_t cap) AQUA_EXCLUDES(mu_);
  size_t capacity() const AQUA_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string text;
    uint64_t calls = 0;
    uint64_t total_ns = 0;
    uint64_t min_ns = 0;
    uint64_t max_ns = 0;
    uint64_t peak_mem_bytes = 0;
    uint64_t cancelled = 0;
    uint64_t deadline_exceeded = 0;
    uint64_t store_commits = 0;
    /// `update_seq_` at the last Record — the eviction recency key.
    uint64_t last_update_seq = 0;
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};
  };

  /// Drops least-recently-updated entries until `entries_.size() <= cap`.
  void EvictLocked(size_t cap) AQUA_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<uint64_t, Entry> entries_ AQUA_GUARDED_BY(mu_);
  size_t capacity_ AQUA_GUARDED_BY(mu_) = 0;
  uint64_t update_seq_ AQUA_GUARDED_BY(mu_) = 0;
};

}  // namespace aqua::obs

#endif  // AQUA_OBS_DIGEST_H_
