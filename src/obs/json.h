#ifndef AQUA_OBS_JSON_H_
#define AQUA_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aqua::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view s);

/// Minimal streaming JSON writer used by the metrics snapshot, the trace
/// exporter, and the benchmark result emitter. Handles comma placement and
/// nesting; the caller is responsible for well-formed Begin/End pairing.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits `"k":`; must be followed by exactly one value or container.
  JsonWriter& Key(std::string_view k);

  JsonWriter& String(std::string_view v);
  JsonWriter& Uint(uint64_t v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true once it has at least one element.
  std::vector<bool> has_elem_;
  bool pending_key_ = false;
};

}  // namespace aqua::obs

#endif  // AQUA_OBS_JSON_H_
