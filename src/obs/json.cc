#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace aqua::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_elem_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_elem_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace aqua::obs
