#include "obs/digest.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"

namespace aqua::obs {

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

// --- normalized rendering -------------------------------------------------
// Mirrors the ToString renderings of Predicate / ListPattern / TreePattern
// with every comparison constant replaced by `$`, so the digest key captures
// the *shape* of a query, not its parameters.

std::string NormPred(const PredicateRef& pred);

std::string NormPredBody(const PredicateRef& pred) {
  if (pred == nullptr) return "?";
  switch (pred->kind()) {
    case Predicate::Kind::kTrue:
      return "?";
    case Predicate::Kind::kCompare:
      return pred->attr() + " " + CmpOpToString(pred->op()) + " $";
    case Predicate::Kind::kAnd:
      return "(" + NormPredBody(pred->left()) + " && " +
             NormPredBody(pred->right()) + ")";
    case Predicate::Kind::kOr:
      return "(" + NormPredBody(pred->left()) + " || " +
             NormPredBody(pred->right()) + ")";
    case Predicate::Kind::kNot:
      return "!(" + NormPredBody(pred->left()) + ")";
  }
  return "?";
}

std::string NormPred(const PredicateRef& pred) {
  if (pred == nullptr || pred->kind() == Predicate::Kind::kTrue) return "?";
  return "{" + NormPredBody(pred) + "}";
}

std::string NormTree(const TreePatternRef& tp);

std::string NormList(const ListPatternRef& lp) {
  if (lp == nullptr) return "";
  switch (lp->kind()) {
    case ListPattern::Kind::kPred:
      return NormPred(lp->pred());
    case ListPattern::Kind::kAny:
      return "?";
    case ListPattern::Kind::kConcat: {
      std::string out;
      for (size_t i = 0; i < lp->parts().size(); ++i) {
        if (i > 0) out += ' ';
        out += NormList(lp->parts()[i]);
      }
      return out;
    }
    case ListPattern::Kind::kAlt: {
      std::string out = "(";
      for (size_t i = 0; i < lp->parts().size(); ++i) {
        if (i > 0) out += " | ";
        out += NormList(lp->parts()[i]);
      }
      return out + ")";
    }
    case ListPattern::Kind::kStar:
      return "(" + NormList(lp->inner()) + ")*";
    case ListPattern::Kind::kPlus:
      return "(" + NormList(lp->inner()) + ")+";
    case ListPattern::Kind::kPrune:
      return "!(" + NormList(lp->inner()) + ")";
    case ListPattern::Kind::kPoint:
      return "@" + lp->label();
    case ListPattern::Kind::kTreeAtom:
      return NormTree(lp->tree_atom());
  }
  return "?";
}

std::string NormTree(const TreePatternRef& tp) {
  if (tp == nullptr) return "";
  switch (tp->kind()) {
    case TreePattern::Kind::kLeaf:
      return NormPred(tp->pred());
    case TreePattern::Kind::kNode:
      return NormPred(tp->pred()) + "(" + NormList(tp->children()) + ")";
    case TreePattern::Kind::kPoint:
      return "@" + tp->label();
    case TreePattern::Kind::kAlt: {
      std::string out = "[[";
      for (size_t i = 0; i < tp->alts().size(); ++i) {
        if (i > 0) out += " | ";
        out += NormTree(tp->alts()[i]);
      }
      return out + "]]";
    }
    case TreePattern::Kind::kConcatAt:
      return "[[" + NormTree(tp->first()) + " .@" + tp->label() + " " +
             NormTree(tp->second()) + "]]";
    case TreePattern::Kind::kStarAt:
      return "[[" + NormTree(tp->inner()) + "]]*@" + tp->label();
    case TreePattern::Kind::kPlusAt:
      return "[[" + NormTree(tp->inner()) + "]]+@" + tp->label();
    case TreePattern::Kind::kRootAnchor:
      return "^" + NormTree(tp->inner());
    case TreePattern::Kind::kLeafAnchor:
      return "[[" + NormTree(tp->inner()) + "]]$";
    case TreePattern::Kind::kPrune:
      return "!" + NormTree(tp->inner());
  }
  return "?";
}

/// Function-expression shape with constants elided: `const#12` and update
/// values normalize to `$`, guards go through `NormPred`.
std::string NormFnExpr(const FnExprRef& e) {
  if (e == nullptr) return "id";
  switch (e->kind()) {
    case FnExpr::Kind::kIdentity:
      return "id";
    case FnExpr::Kind::kConst:
      return "const#$";
    case FnExpr::Kind::kChoose:
      return "choose(" + NormPred(e->guard()) + ", " +
             NormFnExpr(e->then_expr()) + ", " + NormFnExpr(e->else_expr()) +
             ")";
    case FnExpr::Kind::kUpdate:
    case FnExpr::Kind::kSetAttr: {
      std::string out =
          e->kind() == FnExpr::Kind::kUpdate ? "update(" : "set_attr(";
      for (size_t i = 0; i < e->sets().size(); ++i) {
        if (i > 0) out += ", ";
        out += e->sets()[i].attr + "=$";
      }
      return out + ")";
    }
    case FnExpr::Kind::kCompose:
      return NormFnExpr(e->outer()) + " . " + NormFnExpr(e->inner());
  }
  return "?";
}

std::string NormAnchoredList(const AnchoredListPattern& lp) {
  std::string out;
  if (lp.anchor_begin) out += '^';
  out += NormList(lp.body);
  if (lp.anchor_end) out += '$';
  return out;
}

void NormalizeNode(const PlanRef& node, size_t indent, std::string* out) {
  out->append(indent * 2, ' ');
  if (node == nullptr) {
    *out += "(null)\n";
    return;
  }
  *out += PlanOpToString(node->op);
  std::vector<std::string> params;
  if (!node->collection.empty()) params.push_back(node->collection);
  if (!node->attr.empty()) params.push_back("index=" + node->attr);
  if (node->pred != nullptr) {
    params.push_back("pred=" + NormPred(node->pred));
  }
  if (node->anchor != nullptr) {
    params.push_back("anchor=" + NormPred(node->anchor));
  }
  if (node->tpattern != nullptr) {
    params.push_back("pattern=" + NormTree(node->tpattern));
  }
  if (node->lpattern.body != nullptr) {
    params.push_back("pattern=" + NormAnchoredList(node->lpattern));
  }
  if (node->fn_expr != nullptr) {
    params.push_back("fn=" + NormFnExpr(node->fn_expr));
  }
  if (!params.empty()) {
    *out += " [";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += params[i];
    }
    *out += "]";
  }
  *out += '\n';
  for (const PlanRef& child : node->children) {
    NormalizeNode(child, indent + 1, out);
  }
}

}  // namespace

std::string NormalizePlan(const PlanRef& plan) {
  std::string out;
  NormalizeNode(plan, 0, &out);
  return out;
}

uint64_t FingerprintPlan(const PlanRef& plan) {
  return Fnv1a(NormalizePlan(plan));
}

double EstimateQuantile(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets,
    uint64_t count, double q) {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target rank in [1, count]; the quantile is the value of the rank-th
  // smallest sample.
  double rank = q * static_cast<double>(count);
  if (rank < 1.0) rank = 1.0;
  uint64_t cum = 0;
  double last_upper = 0.0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    uint64_t c = buckets[b];
    if (c == 0) continue;
    // Integer value range of bucket b: {0}, {1}, then [2^(b-1), 2^b - 1].
    double lower = b <= 1 ? static_cast<double>(b)
                          : std::ldexp(1.0, static_cast<int>(b) - 1);
    double upper = b <= 1 ? static_cast<double>(b)
                          : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
    last_upper = upper;
    if (static_cast<double>(cum + c) >= rank) {
      // Interpolate by rank position inside the bucket.
      double pos = (rank - static_cast<double>(cum)) / static_cast<double>(c);
      return lower + pos * (upper - lower);
    }
    cum += c;
  }
  return last_upper;
}

namespace {

size_t DefaultDigestCapacity() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at init.
  const char* env = std::getenv("AQUA_DIGEST_CAP");
  if (env != nullptr && *env != '\0') {
    long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<size_t>(n);
  }
  return 4096;
}

}  // namespace

DigestTable::DigestTable(size_t capacity) : capacity_(capacity) {}

DigestTable& DigestTable::Global() {
  static DigestTable* instance = new DigestTable();  // leaked
  return *instance;
}

void DigestTable::EvictLocked(size_t cap) {
  while (entries_.size() > cap) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_update_seq < victim->second.last_update_seq) {
        victim = it;
      }
    }
    entries_.erase(victim);
  }
}

void DigestTable::set_capacity(size_t cap) {
  MutexLock lock(mu_);
  capacity_ = cap;
  EvictLocked(cap != 0 ? cap : DefaultDigestCapacity());
}

size_t DigestTable::capacity() const {
  MutexLock lock(mu_);
  return capacity_ != 0 ? capacity_ : DefaultDigestCapacity();
}

void DigestTable::Record(uint64_t fingerprint, std::string_view text,
                         uint64_t wall_ns, uint64_t mem_peak_bytes,
                         StatusCode code, bool store_commit) {
  MutexLock lock(mu_);
  bool is_new = entries_.find(fingerprint) == entries_.end();
  if (is_new) {
    // Make room *before* inserting so the new row can never be its own
    // eviction victim.
    size_t cap = capacity_ != 0 ? capacity_ : DefaultDigestCapacity();
    if (cap >= 1 && entries_.size() >= cap) EvictLocked(cap - 1);
  }
  Entry& e = entries_[fingerprint];
  if (e.calls == 0) {
    e.text = std::string(text);
    e.min_ns = wall_ns;
    e.max_ns = wall_ns;
  } else {
    e.min_ns = std::min(e.min_ns, wall_ns);
    e.max_ns = std::max(e.max_ns, wall_ns);
  }
  ++e.calls;
  e.total_ns += wall_ns;
  e.peak_mem_bytes = std::max(e.peak_mem_bytes, mem_peak_bytes);
  if (code == StatusCode::kCancelled) ++e.cancelled;
  if (code == StatusCode::kDeadlineExceeded) ++e.deadline_exceeded;
  if (store_commit) ++e.store_commits;
  e.last_update_seq = ++update_seq_;
  ++e.buckets[Histogram::BucketOf(wall_ns)];
}

std::vector<DigestRow> DigestTable::Rows() const {
  std::vector<DigestRow> rows;
  {
    MutexLock lock(mu_);
    rows.reserve(entries_.size());
    for (const auto& [fp, e] : entries_) {
      DigestRow r;
      r.fingerprint = fp;
      r.text = e.text;
      r.calls = e.calls;
      r.total_ns = e.total_ns;
      r.min_ns = e.min_ns;
      r.max_ns = e.max_ns;
      r.peak_mem_bytes = e.peak_mem_bytes;
      r.cancelled = e.cancelled;
      r.deadline_exceeded = e.deadline_exceeded;
      r.store_commits = e.store_commits;
      r.buckets = e.buckets;
      rows.push_back(std::move(r));
    }
  }
  std::sort(rows.begin(), rows.end(), [](const DigestRow& a,
                                         const DigestRow& b) {
    return a.total_ns != b.total_ns ? a.total_ns > b.total_ns
                                    : a.fingerprint < b.fingerprint;
  });
  return rows;
}

DigestRow DigestTable::Row(uint64_t fingerprint) const {
  MutexLock lock(mu_);
  auto it = entries_.find(fingerprint);
  DigestRow r;
  r.fingerprint = fingerprint;
  if (it == entries_.end()) return r;
  const Entry& e = it->second;
  r.text = e.text;
  r.calls = e.calls;
  r.total_ns = e.total_ns;
  r.min_ns = e.min_ns;
  r.max_ns = e.max_ns;
  r.peak_mem_bytes = e.peak_mem_bytes;
  r.cancelled = e.cancelled;
  r.deadline_exceeded = e.deadline_exceeded;
  r.store_commits = e.store_commits;
  r.buckets = e.buckets;
  return r;
}

namespace {

/// One-line form of a normalized plan for the table rendering: indentation
/// collapsed to `op [params] > child [params] > ...`.
std::string FlattenText(const std::string& text) {
  std::string out;
  bool at_line_start = true;
  for (char c : text) {
    if (c == '\n') {
      at_line_start = true;
      continue;
    }
    if (at_line_start) {
      if (c == ' ') continue;
      if (!out.empty()) out += " > ";
      at_line_start = false;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string DigestTable::ToText(size_t max_rows) const {
  std::vector<DigestRow> rows = Rows();
  std::string out =
      "fingerprint       calls    total_ms   mean_ms    p50_ms     p95_ms "
      "    p99_ms     max_ms     peak_kb    cxl   dl    wr    plan\n";
  size_t n = std::min(rows.size(), max_rows);
  for (size_t i = 0; i < n; ++i) {
    const DigestRow& r = rows[i];
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "%016llx  %-8llu %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f "
                  "%-10.3f %-10llu %-5llu %-5llu %-5llu ",
                  static_cast<unsigned long long>(r.fingerprint),
                  static_cast<unsigned long long>(r.calls),
                  static_cast<double>(r.total_ns) / 1e6, r.mean_ns() / 1e6,
                  r.p50_ns() / 1e6, r.p95_ns() / 1e6, r.p99_ns() / 1e6,
                  static_cast<double>(r.max_ns) / 1e6,
                  static_cast<unsigned long long>(r.peak_mem_bytes / 1024),
                  static_cast<unsigned long long>(r.cancelled),
                  static_cast<unsigned long long>(r.deadline_exceeded),
                  static_cast<unsigned long long>(r.store_commits));
    out += buf;
    out += FlattenText(r.text);
    out += '\n';
  }
  if (rows.empty()) out += "(no digests recorded)\n";
  if (rows.size() > n) {
    out += "(" + std::to_string(rows.size() - n) + " more rows)\n";
  }
  return out;
}

std::string DigestTable::ToJson(size_t max_rows) const {
  std::vector<DigestRow> rows = Rows();
  JsonWriter w;
  w.BeginObject();
  w.Key("digests").BeginArray();
  size_t n = std::min(rows.size(), max_rows);
  for (size_t i = 0; i < n; ++i) {
    const DigestRow& r = rows[i];
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    w.BeginObject();
    w.Key("fingerprint").String(fp);
    w.Key("plan").String(FlattenText(r.text));
    w.Key("calls").Uint(r.calls);
    w.Key("total_ns").Uint(r.total_ns);
    w.Key("min_ns").Uint(r.min_ns);
    w.Key("max_ns").Uint(r.max_ns);
    w.Key("peak_mem_bytes").Uint(r.peak_mem_bytes);
    w.Key("cancelled").Uint(r.cancelled);
    w.Key("deadline_exceeded").Uint(r.deadline_exceeded);
    w.Key("store_commits").Uint(r.store_commits);
    w.Key("mean_ns").Double(r.mean_ns());
    w.Key("p50_ns").Double(r.p50_ns());
    w.Key("p95_ns").Double(r.p95_ns());
    w.Key("p99_ns").Double(r.p99_ns());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void DigestTable::Reset() {
  MutexLock lock(mu_);
  entries_.clear();
}

size_t DigestTable::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace aqua::obs
