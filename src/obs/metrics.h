#ifndef AQUA_OBS_METRICS_H_
#define AQUA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace aqua::obs {

/// Monotonic named counter. `Add` is a relaxed atomic increment, cheap
/// enough to leave on in production paths; thread-safe.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-value named gauge (pool utilization, ring-buffer occupancy, queue
/// depths). `Set`/`Add` are relaxed atomics; unlike a Counter the value may
/// go down, and snapshot deltas pass it through as-is (last value wins).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Log-scale (power-of-two bucket) histogram over non-negative integer
/// samples (step counts, candidate counts, nanosecond durations).
///
/// Bucket `b` holds samples with bit-width `b`: bucket 0 is exactly the
/// value 0, bucket `b >= 1` covers `[2^(b-1), 2^b)`. 65 buckets cover the
/// full uint64 range.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Bucket index of value `v` (its bit width).
  static size_t BucketOf(uint64_t v);
  /// Inclusive lower bound of bucket `b` (0 for buckets 0 and 1).
  static uint64_t BucketLowerBound(size_t b);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }
  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void Reset();
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Point-in-time copy of one histogram: only non-empty buckets are kept,
/// as (bucket index, count) pairs.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<std::pair<size_t, uint64_t>> buckets;
};

/// Point-in-time copy of the whole registry; safe to hold, diff, and
/// serialize after the counters move on.
struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a counter by name; 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
  /// Value of a gauge by name; 0 when absent.
  int64_t GaugeValue(std::string_view name) const;

  /// Element-wise `this - base` (values clamp at 0 for entries that were
  /// reset in between). Entries absent from `base` pass through unchanged.
  /// Gauges are *not* differenced: a gauge is a level, not a rate, so the
  /// delta carries this snapshot's last value unchanged.
  Snapshot DeltaSince(const Snapshot& base) const;

  /// `{"counters": {...}, "histograms": {...}}`.
  std::string ToJson() const;
  /// Aligned `name value` lines, counters then histograms.
  std::string ToText() const;
};

/// Process-wide registry of named counters and histograms.
///
/// Metric objects are created on first use and never destroyed or moved, so
/// instrumentation sites may cache the returned pointer (the AQUA_OBS_*
/// macros below do exactly that via a function-local static).
class Registry {
 public:
  static Registry& Global();

  /// Runtime kill switch for the AQUA_OBS_* macros: the disabled path is a
  /// single relaxed load + branch.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Returns the counter/gauge/histogram named `name`, creating it if
  /// needed.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  Snapshot Snap() const;
  /// Zeroes every counter and histogram (benchmark/test hygiene); the
  /// registered names and cached pointers stay valid.
  void ResetAll();

 private:
  Registry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;

  static std::atomic<bool> enabled_;
};

}  // namespace aqua::obs

/// Instrumentation macros. `name` must be a string literal (or otherwise
/// stable for the life of the process); the metric pointer is resolved once
/// per call site. Compile out entirely with -DAQUA_OBS_DISABLED; at runtime
/// `Registry::set_enabled(false)` reduces each site to one branch.
#ifndef AQUA_OBS_DISABLED
#define AQUA_OBS_COUNT(name, n)                                     \
  do {                                                              \
    if (::aqua::obs::Registry::enabled()) {                         \
      static ::aqua::obs::Counter* const aqua_obs_counter_ =        \
          ::aqua::obs::Registry::Global().GetCounter(name);         \
      aqua_obs_counter_->Add(static_cast<uint64_t>(n));             \
    }                                                               \
  } while (0)
#define AQUA_OBS_RECORD(name, v)                                    \
  do {                                                              \
    if (::aqua::obs::Registry::enabled()) {                         \
      static ::aqua::obs::Histogram* const aqua_obs_hist_ =         \
          ::aqua::obs::Registry::Global().GetHistogram(name);       \
      aqua_obs_hist_->Record(static_cast<uint64_t>(v));             \
    }                                                               \
  } while (0)
#define AQUA_OBS_GAUGE_SET(name, v)                                 \
  do {                                                              \
    if (::aqua::obs::Registry::enabled()) {                         \
      static ::aqua::obs::Gauge* const aqua_obs_gauge_ =            \
          ::aqua::obs::Registry::Global().GetGauge(name);           \
      aqua_obs_gauge_->Set(static_cast<int64_t>(v));                \
    }                                                               \
  } while (0)
#define AQUA_OBS_GAUGE_ADD(name, n)                                 \
  do {                                                              \
    if (::aqua::obs::Registry::enabled()) {                         \
      static ::aqua::obs::Gauge* const aqua_obs_gauge_ =            \
          ::aqua::obs::Registry::Global().GetGauge(name);           \
      aqua_obs_gauge_->Add(static_cast<int64_t>(n));                \
    }                                                               \
  } while (0)
#else
#define AQUA_OBS_COUNT(name, n) \
  do {                          \
  } while (0)
#define AQUA_OBS_RECORD(name, v) \
  do {                           \
  } while (0)
#define AQUA_OBS_GAUGE_SET(name, v) \
  do {                              \
  } while (0)
#define AQUA_OBS_GAUGE_ADD(name, n) \
  do {                              \
  } while (0)
#endif

#endif  // AQUA_OBS_METRICS_H_
