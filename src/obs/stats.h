#ifndef AQUA_OBS_STATS_H_
#define AQUA_OBS_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace aqua::obs {

/// One physical operator's measurements from one `Execute`, harvested by
/// `exec::CollectOpSamples` after the run. Plain data: the exec layer
/// produces these, the warehouse consumes them, so `obs` never has to see
/// an exec header.
struct OpSample {
  /// `PlanOpToString` result — static storage, never freed.
  const char* op_name = "";
  /// Stable op path from the root by child index: "0", "0.0", "0.1.2", ...
  std::string path;
  /// `FingerprintPlan` of the subplan rooted at this op — the key the cost
  /// model can recompute for any candidate subplan during rewriting.
  uint64_t node_fp = 0;
  uint64_t calls = 0;
  /// Observed input cardinality (sum of the children's outputs; for leaf
  /// scans the rows scanned; for indexed probes the candidate count).
  uint64_t in_rows = 0;
  /// Observed output cardinality of the last call.
  uint64_t out_rows = 0;
  uint64_t wall_ns = 0;
  uint64_t cpu_ns = 0;
  /// Index probes and candidates returned (indexed ops only, else 0).
  uint64_t probes = 0;
  uint64_t candidates = 0;
};

/// One row of the warehouse, as copied out by `Rows` / `RowsFor`.
struct OpStatsRow {
  uint64_t plan_fp = 0;     ///< normalized fingerprint of the *root* plan
  std::string path;         ///< stable op path within that plan
  std::string op_name;
  uint64_t node_fp = 0;     ///< fingerprint of the subplan at this op
  uint64_t calls = 0;       ///< harvests folded into this record (confidence)
  double in_rows = 0;       ///< EWMA-smoothed observations
  double out_rows = 0;
  double wall_ns = 0;
  double cpu_ns = 0;
  /// EWMA of out_rows / max(in_rows, 1) per harvest.
  double selectivity = 0;
  /// EWMA of candidates / probes per harvest; < 0 when never observed
  /// (the op is not an index probe).
  double candidates_per_probe = -1;
};

#ifndef AQUA_OBS_DISABLED

/// Process-wide runtime-statistics warehouse: per-operator observed
/// cardinalities, candidates-per-probe, and wall/CPU time, harvested at the
/// end of every `Executor::Execute` and EWMA-smoothed into bounded records.
///
/// Records are keyed by (normalized plan fingerprint, stable op path) — the
/// same FNV-1a fingerprint scheme the digest table uses — so re-running the
/// same query *shape* keeps folding into the same rows regardless of the
/// constants. Each harvest also updates a per-subplan-fingerprint learned
/// index (`LearnedSelectivity` / `LearnedCandidates`): this is what the
/// cost model queries during rewriting, where a candidate subplan is
/// estimated outside the context of any particular root plan.
///
/// Both tables are bounded like the digest table: past `capacity()`
/// distinct keys (default 4096, override via `AQUA_STATS_CAP` or
/// `set_capacity`) a new key evicts the least-recently-updated row.
class StatsWarehouse {
 public:
  /// EWMA smoothing factor: each harvest contributes 20%, so a record
  /// decays an obsolete observation below 1% influence in ~21 harvests.
  static constexpr double kAlpha = 0.2;

  /// Harvests folded into a record before the cost model trusts it over
  /// the static default (see `CostModel`).
  static constexpr uint64_t kMinConfidence = 2;

  /// A standalone warehouse (tests); `capacity` 0 means the default policy
  /// (`AQUA_STATS_CAP` when set and positive, else 4096).
  explicit StatsWarehouse(size_t capacity = 0);

  static StatsWarehouse& Global();

  /// Folds one execution's per-op samples into the warehouse under the
  /// root plan fingerprint `plan_fp`. One mutex acquisition for the whole
  /// batch; bumps `stats.harvests` / `stats.evictions` and maintains the
  /// `stats.records_live` gauge.
  void Harvest(uint64_t plan_fp, const std::vector<OpSample>& samples)
      AQUA_EXCLUDES(mu_);

  /// Learned selectivity (EWMA of out/in) for the subplan fingerprint
  /// `node_fp`; false when the warehouse has never seen it. `calls` gets
  /// the record's confidence (harvest count).
  bool LearnedSelectivity(uint64_t node_fp, double* selectivity,
                          uint64_t* calls) const AQUA_EXCLUDES(mu_);

  /// Learned candidates-per-probe for the subplan fingerprint `node_fp`
  /// (index probes only); false when never observed.
  bool LearnedCandidates(uint64_t node_fp, double* candidates_per_probe,
                         uint64_t* calls) const AQUA_EXCLUDES(mu_);

  /// Copies the table out, sorted by EWMA wall time descending.
  std::vector<OpStatsRow> Rows() const AQUA_EXCLUDES(mu_);

  /// The records of one plan fingerprint, sorted by op path (preorder).
  std::vector<OpStatsRow> RowsFor(uint64_t plan_fp) const AQUA_EXCLUDES(mu_);

  /// Aligned table: plan fp, path, op, calls, in/out rows, selectivity,
  /// candidates-per-probe, wall ms.
  std::string ToText(size_t max_rows = 32) const;
  /// `{"stats":[{...}...]}`, sorted by EWMA wall time descending.
  std::string ToJson(size_t max_rows = 256) const;

  /// Writes every record as a line-oriented text file (format documented
  /// in docs/OBSERVABILITY.md) so benches and daemons warm up across runs.
  Status Save(const std::string& path) const;
  /// Merges records from `Save` output into this warehouse (existing keys
  /// are overwritten; unrelated records are kept).
  Status Load(const std::string& path);

  void Reset() AQUA_EXCLUDES(mu_);
  size_t size() const AQUA_EXCLUDES(mu_);

  /// Changes the record cap (both tables), evicting immediately if over.
  /// `cap` 0 restores the default policy.
  void set_capacity(size_t cap) AQUA_EXCLUDES(mu_);
  size_t capacity() const AQUA_EXCLUDES(mu_);

 private:
  struct Record {
    std::string op_name;
    uint64_t node_fp = 0;
    uint64_t calls = 0;
    double in_rows = 0;
    double out_rows = 0;
    double wall_ns = 0;
    double cpu_ns = 0;
    double selectivity = 0;
    double candidates_per_probe = -1;
    uint64_t last_update_seq = 0;
  };
  struct Learned {
    uint64_t calls = 0;
    double selectivity = 0;
    double candidates_per_probe = -1;
    uint64_t last_update_seq = 0;
  };
  using Key = std::pair<uint64_t, std::string>;  // (plan_fp, op path)

  size_t CapLocked() const AQUA_REQUIRES(mu_);
  /// Drops least-recently-updated entries until both tables fit `cap`;
  /// returns how many were dropped.
  size_t EvictLocked(size_t cap) AQUA_REQUIRES(mu_);
  void FoldSampleLocked(uint64_t plan_fp, const OpSample& s)
      AQUA_REQUIRES(mu_);
  static OpStatsRow MakeRow(const Key& key, const Record& r);

  mutable Mutex mu_;
  std::map<Key, Record> records_ AQUA_GUARDED_BY(mu_);
  std::map<uint64_t, Learned> learned_ AQUA_GUARDED_BY(mu_);
  size_t capacity_ AQUA_GUARDED_BY(mu_) = 0;
  uint64_t update_seq_ AQUA_GUARDED_BY(mu_) = 0;
};

/// `Global().Save(path)`; an empty `path` resolves `AQUA_STATS_FILE`
/// (InvalidArgument when neither names a file).
Status SaveStats(const std::string& path = "");
/// `Global().Load(path)`; an empty `path` resolves `AQUA_STATS_FILE`.
Status LoadStats(const std::string& path = "");

#else  // AQUA_OBS_DISABLED

/// Compiled-out stub: harvests vanish, lookups always miss, persistence is
/// a no-op — so the cost model and rewriter fall back to their static
/// selectivity constants (the CI no-obs job proves tier-1 tests pass
/// against this shape).
class StatsWarehouse {
 public:
  static constexpr double kAlpha = 0.2;
  static constexpr uint64_t kMinConfidence = 2;

  explicit StatsWarehouse(size_t = 0) {}
  static StatsWarehouse& Global() {
    static StatsWarehouse stub;
    return stub;
  }
  void Harvest(uint64_t, const std::vector<OpSample>&) {}
  bool LearnedSelectivity(uint64_t, double*, uint64_t*) const {
    return false;
  }
  bool LearnedCandidates(uint64_t, double*, uint64_t*) const {
    return false;
  }
  std::vector<OpStatsRow> Rows() const { return {}; }
  std::vector<OpStatsRow> RowsFor(uint64_t) const { return {}; }
  std::string ToText(size_t = 32) const {
    return "(runtime statistics compiled out)\n";
  }
  std::string ToJson(size_t = 256) const { return "{\"stats\":[]}"; }
  Status Save(const std::string&) const { return Status::OK(); }
  Status Load(const std::string&) { return Status::OK(); }
  void Reset() {}
  size_t size() const { return 0; }
  void set_capacity(size_t) {}
  size_t capacity() const { return 0; }
};

inline Status SaveStats(const std::string& = "") { return Status::OK(); }
inline Status LoadStats(const std::string& = "") { return Status::OK(); }

#endif  // AQUA_OBS_DISABLED

}  // namespace aqua::obs

#endif  // AQUA_OBS_STATS_H_
