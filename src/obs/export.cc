#include "obs/export.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <vector>

#include "obs/tasks.h"

namespace aqua::obs {

namespace {

/// `pattern.nfa_steps` -> `<prefix>pattern_nfa_steps` (metric names may
/// only contain [a-zA-Z0-9_:]).
std::string MangleName(const std::string& prefix, std::string_view name) {
  std::string out = prefix;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Inclusive integer upper bound of log-scale bucket `b` as an `le` label
/// value: 0, 1, 3, 7, 15, ...
std::string BucketLe(size_t b) {
  if (b == 0) return "0";
  if (b >= 64) return "+Inf";  // 2^64 - 1 covers the whole range anyway
  return std::to_string((uint64_t{1} << b) - 1);
}

void AppendHelpType(std::string* out, const std::string& name,
                    const char* type, const std::string& help) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + std::string(type) + "\n";
}

}  // namespace

std::string ToOpenMetrics(const Snapshot& snap,
                          const OpenMetricsOptions& opts) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    std::string m = MangleName(opts.prefix, name);
    AppendHelpType(&out, m, "counter", "registry counter " + name);
    out += m + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string m = MangleName(opts.prefix, name);
    AppendHelpType(&out, m, "gauge", "registry gauge " + name);
    out += m + " " + std::to_string(value) + "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    std::string m = MangleName(opts.prefix, h.name);
    AppendHelpType(&out, m, "histogram",
                   "registry log-scale histogram " + h.name);
    uint64_t cum = 0;
    for (const auto& [bucket, cnt] : h.buckets) {
      cum += cnt;
      std::string le = BucketLe(bucket);
      if (le == "+Inf") continue;  // folded into the +Inf bucket below
      out += m + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) + "\n";
    }
    out += m + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += m + "_sum " + std::to_string(h.sum) + "\n";
    out += m + "_count " + std::to_string(h.count) + "\n";
  }
  if (opts.digests != nullptr) {
    std::vector<DigestRow> rows = opts.digests->Rows();
    if (rows.size() > opts.max_digests) rows.resize(opts.max_digests);
    auto labeled = [](const DigestRow& r) {
      char fp[24];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(r.fingerprint));
      return std::string("{digest=\"") + fp + "\"}";
    };
    std::string calls = MangleName(opts.prefix, "digest_calls");
    AppendHelpType(&out, calls, "counter",
                   "executions per normalized-plan digest");
    for (const DigestRow& r : rows) {
      out += calls + "_total" + labeled(r) + " " + std::to_string(r.calls) +
             "\n";
    }
    std::string ns = MangleName(opts.prefix, "digest_ns");
    AppendHelpType(&out, ns, "counter",
                   "total wall nanoseconds per normalized-plan digest");
    for (const DigestRow& r : rows) {
      out += ns + "_total" + labeled(r) + " " + std::to_string(r.total_ns) +
             "\n";
    }
    struct Q {
      const char* suffix;
      double (DigestRow::*fn)() const;
    };
    for (const Q& q : {Q{"digest_p50_ns", &DigestRow::p50_ns},
                       Q{"digest_p95_ns", &DigestRow::p95_ns},
                       Q{"digest_p99_ns", &DigestRow::p99_ns}}) {
      std::string name = MangleName(opts.prefix, q.suffix);
      AppendHelpType(&out, name, "gauge",
                     "estimated latency quantile per digest (ns)");
      for (const DigestRow& r : rows) {
        char val[32];
        std::snprintf(val, sizeof(val), "%.1f", (r.*q.fn)());
        out += name + labeled(r) + " " + val + "\n";
      }
    }
  }
  if (opts.stats != nullptr) {
    std::vector<OpStatsRow> rows = opts.stats->Rows();
    if (rows.size() > opts.max_stats) rows.resize(opts.max_stats);
    auto labeled = [](const OpStatsRow& r) {
      char fp[24];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(r.plan_fp));
      return std::string("{plan=\"") + fp + "\",path=\"" + r.path +
             "\",op=\"" + r.op_name + "\"}";
    };
    std::string calls = MangleName(opts.prefix, "stats_op_calls");
    AppendHelpType(&out, calls, "counter",
                   "harvests folded into each per-op stats record");
    for (const OpStatsRow& r : rows) {
      out += calls + "_total" + labeled(r) + " " + std::to_string(r.calls) +
             "\n";
    }
    struct G {
      const char* suffix;
      const char* help;
      double OpStatsRow::*field;
    };
    for (const G& g :
         {G{"stats_op_out_rows", "EWMA observed output cardinality per op",
            &OpStatsRow::out_rows},
          G{"stats_op_selectivity",
            "EWMA observed selectivity (out/in) per op",
            &OpStatsRow::selectivity},
          G{"stats_op_wall_ns", "EWMA wall nanoseconds per op",
            &OpStatsRow::wall_ns}}) {
      std::string name = MangleName(opts.prefix, g.suffix);
      AppendHelpType(&out, name, "gauge", g.help);
      for (const OpStatsRow& r : rows) {
        char val[32];
        std::snprintf(val, sizeof(val), "%.3f", r.*g.field);
        out += name + labeled(r) + " " + val + "\n";
      }
    }
    std::string cpp = MangleName(opts.prefix, "stats_op_candidates_per_probe");
    AppendHelpType(&out, cpp, "gauge",
                   "EWMA observed index candidates per probe (indexed ops)");
    for (const OpStatsRow& r : rows) {
      if (r.candidates_per_probe < 0) continue;
      char val[32];
      std::snprintf(val, sizeof(val), "%.3f", r.candidates_per_probe);
      out += cpp + labeled(r) + " " + val + "\n";
    }
  }
  out += "# EOF\n";
  return out;
}

namespace {

struct Family {
  std::string type;
  // Histogram bookkeeping.
  double last_le = -1.0;
  uint64_t last_bucket_count = 0;
  bool saw_inf = false;
  bool has_bucket = false;
  uint64_t inf_count = 0;
  uint64_t count_value = 0;
  bool has_count = false;
};

Status Fail(size_t line_no, const std::string& msg) {
  return Status::InvalidArgument("openmetrics line " +
                                 std::to_string(line_no) + ": " + msg);
}

}  // namespace

Status CheckOpenMetrics(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("openmetrics: empty body");
  std::map<std::string, Family> families;
  bool saw_eof = false;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      return Fail(line_no + 1, "final line not newline-terminated");
    }
    std::string line(text.substr(pos, nl - pos));
    pos = nl + 1;
    ++line_no;
    if (saw_eof) return Fail(line_no, "content after # EOF");
    if (line.empty()) return Fail(line_no, "empty line");
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.rfind("# ", 0) == 0) {
      // "# HELP name text" / "# TYPE name type" / "# UNIT name unit"
      size_t sp1 = line.find(' ', 2);
      if (sp1 == std::string::npos) return Fail(line_no, "malformed comment");
      std::string keyword = line.substr(2, sp1 - 2);
      size_t sp2 = line.find(' ', sp1 + 1);
      if (keyword == "TYPE") {
        if (sp2 == std::string::npos) return Fail(line_no, "TYPE without type");
        std::string name = line.substr(sp1 + 1, sp2 - sp1 - 1);
        std::string type = line.substr(sp2 + 1);
        if (families.count(name) != 0 && !families[name].type.empty()) {
          return Fail(line_no, "duplicate TYPE for " + name);
        }
        families[name].type = type;
      } else if (keyword != "HELP" && keyword != "UNIT") {
        return Fail(line_no, "unknown comment keyword " + keyword);
      }
      continue;
    }
    // Sample: name[{labels}] value [timestamp]
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos || name_end == 0) {
      return Fail(line_no, "malformed sample");
    }
    std::string name = line.substr(0, name_end);
    std::string labels;
    size_t value_pos = name_end;
    if (line[name_end] == '{') {
      size_t close = line.find('}', name_end);
      if (close == std::string::npos) return Fail(line_no, "unclosed labels");
      labels = line.substr(name_end + 1, close - name_end - 1);
      value_pos = close + 1;
    }
    while (value_pos < line.size() && line[value_pos] == ' ') ++value_pos;
    if (value_pos >= line.size()) return Fail(line_no, "sample without value");
    std::string value_str = line.substr(value_pos);
    size_t sp = value_str.find(' ');
    if (sp != std::string::npos) value_str = value_str.substr(0, sp);
    char* end = nullptr;
    double value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str()) return Fail(line_no, "non-numeric value");

    // Resolve the sample to a declared family.
    std::string family_name;
    std::string suffix;
    for (const char* s : {"_total", "_bucket", "_sum", "_count", "_created"}) {
      if (name.size() > std::strlen(s) &&
          name.compare(name.size() - std::strlen(s), std::string::npos, s) ==
              0) {
        std::string base = name.substr(0, name.size() - std::strlen(s));
        if (families.count(base) != 0) {
          family_name = base;
          suffix = s;
          break;
        }
      }
    }
    if (family_name.empty() && families.count(name) != 0) {
      family_name = name;
    }
    if (family_name.empty()) {
      return Fail(line_no, "sample " + name + " has no preceding TYPE");
    }
    Family& fam = families[family_name];
    if (fam.type.empty()) {
      return Fail(line_no, "sample " + name + " before TYPE line");
    }
    if (fam.type == "counter") {
      if (suffix != "_total" && suffix != "_created") {
        return Fail(line_no,
                    "counter sample " + name + " must end in _total");
      }
      if (value < 0) return Fail(line_no, "negative counter " + name);
    } else if (fam.type == "histogram") {
      if (suffix == "_bucket") {
        size_t le_pos = labels.find("le=\"");
        if (le_pos == std::string::npos) {
          return Fail(line_no, "histogram bucket without le label");
        }
        size_t le_end = labels.find('"', le_pos + 4);
        std::string le = labels.substr(le_pos + 4, le_end - le_pos - 4);
        double le_val = le == "+Inf"
                            ? std::numeric_limits<double>::infinity()
                            : std::strtod(le.c_str(), nullptr);
        if (fam.has_bucket && le_val <= fam.last_le) {
          return Fail(line_no, "non-increasing le bounds in " + family_name);
        }
        if (fam.has_bucket &&
            static_cast<uint64_t>(value) < fam.last_bucket_count) {
          return Fail(line_no,
                      "non-monotone bucket counts in " + family_name);
        }
        if (fam.saw_inf) {
          return Fail(line_no, "bucket after +Inf in " + family_name);
        }
        fam.has_bucket = true;
        fam.last_le = le_val;
        fam.last_bucket_count = static_cast<uint64_t>(value);
        if (std::isinf(le_val)) {
          fam.saw_inf = true;
          fam.inf_count = static_cast<uint64_t>(value);
        }
      } else if (suffix == "_count") {
        fam.has_count = true;
        fam.count_value = static_cast<uint64_t>(value);
      } else if (suffix != "_sum" && suffix != "_created") {
        return Fail(line_no, "unexpected histogram sample " + name);
      }
    } else if (fam.type == "gauge") {
      if (!suffix.empty() && suffix != "_total") {
        // A gauge sample is the bare family name; `_total` here would mean
        // we mis-resolved a counter — reject to be safe.
        return Fail(line_no, "unexpected gauge sample " + name);
      }
    }
  }
  if (!saw_eof) return Status::InvalidArgument("openmetrics: missing # EOF");
  for (const auto& [name, fam] : families) {
    if (fam.type == "histogram" && fam.has_bucket) {
      if (!fam.saw_inf) {
        return Status::InvalidArgument("openmetrics: histogram " + name +
                                       " missing +Inf bucket");
      }
      if (fam.has_count && fam.inf_count != fam.count_value) {
        return Status::InvalidArgument("openmetrics: histogram " + name +
                                       " +Inf bucket != _count");
      }
    }
  }
  return Status::OK();
}

Status ParseHttpRequestPath(std::string_view req, std::string* path) {
  size_t line_end = req.find("\r\n");
  if (line_end == std::string_view::npos) {
    return Status::InvalidArgument("truncated request line");
  }
  std::string_view line = req.substr(0, line_end);
  if (line.rfind("GET ", 0) != 0) {
    return Status::InvalidArgument("only GET is supported");
  }
  size_t sp = line.find(' ', 4);
  if (sp == std::string_view::npos || sp == 4) {
    return Status::InvalidArgument("request line missing HTTP version");
  }
  *path = std::string(line.substr(4, sp - 4));
  return Status::OK();
}

Status MetricsHttpServer::Start(uint16_t port) {
  if (running()) return Status::InvalidArgument("server already running");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::InvalidArgument(std::string("socket: ") +
                                   std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::InvalidArgument(std::string("bind 127.0.0.1:") +
                                   std::to_string(port) + ": " +
                                   std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::InvalidArgument(std::string("listen: ") +
                                   std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_.store(fd);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
}

void MetricsHttpServer::AcceptLoop() {
  for (;;) {
    int lfd = listen_fd_.load();
    if (lfd < 0) return;
    int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener was shut down (Stop) or failed hard
    }
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    // Read until the end of the request headers (one request per
    // connection; Prometheus scrapes this way with `Connection: close`).
    std::string req;
    char buf[2048];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < 16 * 1024) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      req.append(buf, static_cast<size_t>(n));
    }
    // A short/partial read (client died mid-request, or sent garbage) must
    // not be mistaken for `GET /`: parse strictly and answer 400.
    std::string path;
    std::string response;
    if (ParseHttpRequestPath(req, &path).ok()) {
      response = Respond(path);
    } else {
      std::string body = "bad request\n";
      response =
          "HTTP/1.1 400 Bad Request\r\nContent-Type: text/plain; "
          "charset=utf-8\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
          body;
    }
    size_t off = 0;
    while (off < response.size()) {
      ssize_t n = ::send(fd, response.data() + off, response.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    ::close(fd);
  }
}

std::string MetricsHttpServer::Respond(const std::string& path) const {
  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  std::string status_line = "HTTP/1.1 200 OK";
  if (path == "/metrics") {
    OpenMetricsOptions opts;
    opts.digests = &DigestTable::Global();
    opts.stats = &StatsWarehouse::Global();
    body = ToOpenMetrics(Registry::Global().Snap(), opts);
    content_type =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
  } else if (path == "/digests") {
    body = DigestTable::Global().ToJson();
    content_type = "application/json";
  } else if (path == "/stats") {
    body = StatsWarehouse::Global().ToJson();
    content_type = "application/json";
  } else if (path == "/flight") {
    body = FlightRecorder::Global().ToJson();
    content_type = "application/json";
  } else if (path == "/tasks") {
    body = TaskRegistry::Global().ToJson();
    content_type = "application/json";
  } else if (path == "/healthz" || path == "/") {
    body = "ok\n";
  } else {
    status_line = "HTTP/1.1 404 Not Found";
    body = "not found\n";
  }
  return status_line + "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

}  // namespace aqua::obs
