#ifndef AQUA_OBS_RECORDER_H_
#define AQUA_OBS_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace aqua::obs {

/// What one flight-recorder event describes.
enum class FlightEventKind : uint32_t {
  kExecute = 0,  ///< one `Executor::Execute`
  kMorsel = 1,   ///< one morsel of a parallel fan-out
};

/// One fixed-size structured event. Every field is plain integral data so
/// the ring buffer can publish events word-by-word without locks; strings
/// (plan text, operator names) live in the digest table, keyed by
/// `fingerprint`.
struct FlightEvent {
  uint64_t seq = 0;          ///< recorder-wide order (assigned by Record)
  uint64_t t_ns = 0;         ///< event end, ns since the recorder epoch
  uint64_t fingerprint = 0;  ///< normalized-plan fingerprint (0 for morsels)
  uint64_t wall_ns = 0;      ///< wall time of the execute / morsel
  uint32_t kind = 0;         ///< FlightEventKind
  uint32_t ok = 1;           ///< 0 when the execute returned an error
  uint32_t threads = 0;      ///< execute: participants; morsel: worker slot
  uint32_t morsels = 0;      ///< execute: morsels run; morsel: items in it
  uint64_t max_morsel_ns = 0;  ///< execute: slowest morsel (skew highlight)
  // Counter-delta highlights of the execute (zero for morsel events).
  uint64_t tree_steps = 0;
  uint64_t list_steps = 0;
  uint64_t index_probes = 0;
  uint64_t nodes_visited = 0;
  // Lifecycle fields of the execute (zero for morsel events).
  uint64_t query_id = 0;     ///< QueryContext id
  uint64_t cpu_ns = 0;       ///< CPU across the query thread + helpers
  uint64_t mem_peak = 0;     ///< peak estimated live bytes
  uint32_t code = 0;         ///< StatusCode the execute finished with
  /// Store epoch the execute pinned its read snapshot at (0 for morsels);
  /// doubles as the struct's word-alignment padding.
  uint32_t pinned_epoch = 0;
};
static_assert(sizeof(FlightEvent) % sizeof(uint64_t) == 0,
              "FlightEvent must be publishable as whole words");

/// Always-on, bounded-memory flight recorder: per-thread lock-free ring
/// buffers of the most recent `FlightEvent`s, merged on demand into one
/// chronological dump.
///
/// Writers: each recording thread owns a private ring (registered on first
/// use, never deallocated), so `Record` is wait-free — a global relaxed
/// `fetch_add` for the sequence number plus word-wise relaxed stores into
/// the ring slot, guarded by a per-slot seqlock version for readers.
/// Readers (`Dump`, the shell's `\flight`, the `/flight` endpoint) copy
/// slots optimistically and discard any slot whose version moved while it
/// was being read, so a dump taken during heavy traffic is consistent
/// per-event without ever stalling a writer.
///
/// Capacity is fixed at `kRingCapacity` events per thread; the retained
/// total is published as the `obs.recorder_occupancy` gauge.
class FlightRecorder {
 public:
  static constexpr size_t kRingCapacity = 1024;  // events per thread ring

  static FlightRecorder& Global();

  /// Records `e` in the calling thread's ring. `e.seq` and `e.t_ns` are
  /// assigned here; other fields are the caller's.
  void Record(FlightEvent e);

  /// All retained events across every thread ring, oldest first.
  std::vector<FlightEvent> Dump() const AQUA_EXCLUDES(mu_);

  /// Tabular rendering of `Dump()` (newest last), one line per event.
  std::string ToText(size_t max_events = 64) const;
  /// `{"events":[{...}...]}`, oldest first.
  std::string ToJson(size_t max_events = kRingCapacity) const;

  /// Drops every retained event (the rings themselves stay registered).
  void Clear() AQUA_EXCLUDES(mu_);

  /// Events currently retained across all rings.
  size_t retained() const;
  /// Ring count (== number of threads that ever recorded).
  size_t rings() const AQUA_EXCLUDES(mu_);

  // --- slow-query log -----------------------------------------------------
  // When a threshold is set (> 0), the executor reports every Execute whose
  // wall time meets it; the recorder appends a structured block (plan text,
  // span tree when tracing was on, counter delta) to the log file.

  /// 0 disables. Also settable via AQUA_SLOW_QUERY_MS at process start.
  void set_slow_query_threshold_ns(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_query_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }
  /// Defaults to "aqua_slow_queries.log" (AQUA_SLOW_QUERY_LOG overrides).
  void set_slow_query_log_path(std::string path) AQUA_EXCLUDES(mu_);
  std::string slow_query_log_path() const AQUA_EXCLUDES(mu_);

  /// Appends one slow-query block to the log. `trace_report` may be empty
  /// (tracing off); `plan_text` is the full (non-normalized) plan.
  void AppendSlowQuery(uint64_t wall_ns, uint64_t fingerprint,
                       std::string_view plan_text,
                       std::string_view trace_report, const Snapshot& delta)
      AQUA_EXCLUDES(mu_);

  /// Slow queries logged since process start (cheap health indicator).
  uint64_t slow_queries_logged() const {
    return slow_logged_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kEventWords = sizeof(FlightEvent) / sizeof(uint64_t);

  /// One seqlock-published slot. Readers retry/discard on a torn read; the
  /// single writer (the ring's owning thread) never blocks.
  struct Slot {
    std::atomic<uint64_t> version{0};  // even = stable, odd = being written
    std::array<std::atomic<uint64_t>, kEventWords> words{};
  };

  struct Ring {
    std::array<Slot, kRingCapacity> slots;
    std::atomic<uint64_t> head{0};  // events ever written to this ring
  };

  FlightRecorder();

  Ring* LocalRing();
  Ring* RegisterRing() AQUA_EXCLUDES(mu_);

  mutable Mutex mu_;  // guards rings_ growth + the slow log
  /// One ring per recording thread. Growth is guarded; established rings
  /// are written lock-free by their owning thread (seqlock slots above).
  std::vector<std::unique_ptr<Ring>> rings_ AQUA_GUARDED_BY(mu_);
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> retained_{0};
  std::atomic<uint64_t> slow_threshold_ns_{0};
  std::atomic<uint64_t> slow_logged_{0};
  std::string slow_log_path_ AQUA_GUARDED_BY(mu_);
  uint64_t epoch_ns_ = 0;  // steady-clock origin for t_ns; set once in ctor
};

}  // namespace aqua::obs

#endif  // AQUA_OBS_RECORDER_H_
