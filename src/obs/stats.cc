#include "obs/stats.h"

#ifndef AQUA_OBS_DISABLED

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace aqua::obs {

namespace {

/// Default record cap, shared with `AQUA_DIGEST_CAP`'s semantics: override
/// via `AQUA_STATS_FILE`-sibling env `AQUA_STATS_CAP`, 0/garbage falls back.
size_t DefaultStatsCapacity() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("AQUA_STATS_CAP");
  if (env != nullptr) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  return 4096;
}

double Ewma(double prev, double obs, uint64_t prev_calls) {
  if (prev_calls == 0) return obs;
  return prev + StatsWarehouse::kAlpha * (obs - prev);
}

std::string HexFp(uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

StatsWarehouse::StatsWarehouse(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity;
}

StatsWarehouse& StatsWarehouse::Global() {
  static StatsWarehouse* instance = new StatsWarehouse();  // leaked
  return *instance;
}

size_t StatsWarehouse::CapLocked() const {
  if (capacity_ > 0) return capacity_;
  return DefaultStatsCapacity();
}

size_t StatsWarehouse::EvictLocked(size_t cap) {
  size_t evicted = 0;
  while (records_.size() > cap) {
    auto victim = records_.begin();
    for (auto it = records_.begin(); it != records_.end(); ++it) {
      if (it->second.last_update_seq < victim->second.last_update_seq) {
        victim = it;
      }
    }
    records_.erase(victim);
    ++evicted;
  }
  while (learned_.size() > cap) {
    auto victim = learned_.begin();
    for (auto it = learned_.begin(); it != learned_.end(); ++it) {
      if (it->second.last_update_seq < victim->second.last_update_seq) {
        victim = it;
      }
    }
    learned_.erase(victim);
    ++evicted;
  }
  return evicted;
}

void StatsWarehouse::FoldSampleLocked(uint64_t plan_fp, const OpSample& s) {
  const uint64_t seq = ++update_seq_;
  const double out = static_cast<double>(s.out_rows);
  const double in = static_cast<double>(s.in_rows);
  const double sel =
      std::min(1.0, out / std::max(in, 1.0));  // observed selectivity
  const double cpp = s.probes > 0 ? static_cast<double>(s.candidates) /
                                        static_cast<double>(s.probes)
                                  : -1.0;

  Record& r = records_[Key(plan_fp, s.path)];
  r.op_name = s.op_name;
  r.node_fp = s.node_fp;
  r.in_rows = Ewma(r.in_rows, in, r.calls);
  r.out_rows = Ewma(r.out_rows, out, r.calls);
  r.wall_ns = Ewma(r.wall_ns, static_cast<double>(s.wall_ns), r.calls);
  r.cpu_ns = Ewma(r.cpu_ns, static_cast<double>(s.cpu_ns), r.calls);
  r.selectivity = Ewma(r.selectivity, sel, r.calls);
  if (cpp >= 0) {
    r.candidates_per_probe =
        r.candidates_per_probe < 0 ? cpp
                                   : Ewma(r.candidates_per_probe, cpp, 1);
  }
  r.calls += 1;
  r.last_update_seq = seq;

  Learned& l = learned_[s.node_fp];
  l.selectivity = Ewma(l.selectivity, sel, l.calls);
  if (cpp >= 0) {
    l.candidates_per_probe =
        l.candidates_per_probe < 0 ? cpp
                                   : Ewma(l.candidates_per_probe, cpp, 1);
  }
  l.calls += 1;
  l.last_update_seq = seq;
}

void StatsWarehouse::Harvest(uint64_t plan_fp,
                             const std::vector<OpSample>& samples) {
  if (samples.empty()) return;
  size_t live = 0;
  size_t evicted = 0;
  {
    MutexLock lock(mu_);
    const size_t cap = CapLocked();
    for (const OpSample& s : samples) {
      // Evict-before-insert, like the digest table: make room so the new
      // key itself is never the immediate victim.
      if (records_.size() >= cap &&
          records_.find(Key(plan_fp, s.path)) == records_.end()) {
        evicted += EvictLocked(cap - 1);
      }
      FoldSampleLocked(plan_fp, s);
    }
    evicted += EvictLocked(cap);
    live = records_.size();
  }
  AQUA_OBS_COUNT("stats.harvests", 1);
  if (evicted > 0) AQUA_OBS_COUNT("stats.evictions", evicted);
  AQUA_OBS_GAUGE_SET("stats.records_live", static_cast<int64_t>(live));
}

bool StatsWarehouse::LearnedSelectivity(uint64_t node_fp, double* selectivity,
                                        uint64_t* calls) const {
  MutexLock lock(mu_);
  auto it = learned_.find(node_fp);
  if (it == learned_.end()) return false;
  if (selectivity != nullptr) *selectivity = it->second.selectivity;
  if (calls != nullptr) *calls = it->second.calls;
  return true;
}

bool StatsWarehouse::LearnedCandidates(uint64_t node_fp,
                                       double* candidates_per_probe,
                                       uint64_t* calls) const {
  MutexLock lock(mu_);
  auto it = learned_.find(node_fp);
  if (it == learned_.end() || it->second.candidates_per_probe < 0) {
    return false;
  }
  if (candidates_per_probe != nullptr) {
    *candidates_per_probe = it->second.candidates_per_probe;
  }
  if (calls != nullptr) *calls = it->second.calls;
  return true;
}

OpStatsRow StatsWarehouse::MakeRow(const Key& key, const Record& r) {
  OpStatsRow row;
  row.plan_fp = key.first;
  row.path = key.second;
  row.op_name = r.op_name;
  row.node_fp = r.node_fp;
  row.calls = r.calls;
  row.in_rows = r.in_rows;
  row.out_rows = r.out_rows;
  row.wall_ns = r.wall_ns;
  row.cpu_ns = r.cpu_ns;
  row.selectivity = r.selectivity;
  row.candidates_per_probe = r.candidates_per_probe;
  return row;
}

std::vector<OpStatsRow> StatsWarehouse::Rows() const {
  std::vector<OpStatsRow> rows;
  {
    MutexLock lock(mu_);
    rows.reserve(records_.size());
    for (const auto& [key, rec] : records_) rows.push_back(MakeRow(key, rec));
  }
  std::sort(rows.begin(), rows.end(),
            [](const OpStatsRow& a, const OpStatsRow& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              if (a.plan_fp != b.plan_fp) return a.plan_fp < b.plan_fp;
              return a.path < b.path;
            });
  return rows;
}

std::vector<OpStatsRow> StatsWarehouse::RowsFor(uint64_t plan_fp) const {
  std::vector<OpStatsRow> rows;
  MutexLock lock(mu_);
  // Keys are (plan_fp, path) ordered pairs, so one plan's records are a
  // contiguous, path-ordered range.
  for (auto it = records_.lower_bound(Key(plan_fp, ""));
       it != records_.end() && it->first.first == plan_fp; ++it) {
    rows.push_back(MakeRow(it->first, it->second));
  }
  return rows;
}

std::string StatsWarehouse::ToText(size_t max_rows) const {
  std::vector<OpStatsRow> rows = Rows();
  std::string out =
      "plan              path     op                 calls  in_rows    "
      "out_rows   sel     cand/probe  wall_ms\n";
  size_t shown = 0;
  for (const OpStatsRow& row : rows) {
    if (shown >= max_rows) break;
    char cpp[16];
    if (row.candidates_per_probe < 0) {
      std::snprintf(cpp, sizeof(cpp), "-");
    } else {
      std::snprintf(cpp, sizeof(cpp), "%.1f", row.candidates_per_probe);
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s  %-7s  %-17s  %-5llu  %-9.1f  %-9.1f  %-6.3f  %-10s  "
                  "%.3f\n",
                  HexFp(row.plan_fp).c_str(), row.path.c_str(),
                  row.op_name.c_str(),
                  static_cast<unsigned long long>(row.calls), row.in_rows,
                  row.out_rows, row.selectivity, cpp, row.wall_ns / 1e6);
    out += buf;
    ++shown;
  }
  if (rows.size() > shown) {
    out += "... (" + std::to_string(rows.size() - shown) + " more)\n";
  }
  return out;
}

std::string StatsWarehouse::ToJson(size_t max_rows) const {
  std::vector<OpStatsRow> rows = Rows();
  if (rows.size() > max_rows) rows.resize(max_rows);
  JsonWriter w;
  w.BeginObject();
  w.Key("stats").BeginArray();
  for (const OpStatsRow& row : rows) {
    w.BeginObject();
    w.Key("plan").String(HexFp(row.plan_fp));
    w.Key("path").String(row.path);
    w.Key("op").String(row.op_name);
    w.Key("node").String(HexFp(row.node_fp));
    w.Key("calls").Uint(row.calls);
    w.Key("in_rows").Double(row.in_rows);
    w.Key("out_rows").Double(row.out_rows);
    w.Key("selectivity").Double(row.selectivity);
    if (row.candidates_per_probe >= 0) {
      w.Key("candidates_per_probe").Double(row.candidates_per_probe);
    }
    w.Key("wall_ns").Double(row.wall_ns);
    w.Key("cpu_ns").Double(row.cpu_ns);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

Status StatsWarehouse::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open stats file for write: " +
                                   path);
  }
  out << "aqua-stats v1\n";
  {
    MutexLock lock(mu_);
    for (const auto& [key, r] : records_) {
      out << "record " << HexFp(key.first) << ' ' << key.second << ' '
          << r.op_name << ' ' << HexFp(r.node_fp) << ' ' << r.calls << ' '
          << r.in_rows << ' ' << r.out_rows << ' ' << r.wall_ns << ' '
          << r.cpu_ns << ' ' << r.selectivity << ' ';
      if (r.candidates_per_probe < 0) {
        out << '-';
      } else {
        out << r.candidates_per_probe;
      }
      out << '\n';
    }
    for (const auto& [fp, l] : learned_) {
      out << "learned " << HexFp(fp) << ' ' << l.calls << ' '
          << l.selectivity << ' ';
      if (l.candidates_per_probe < 0) {
        out << '-';
      } else {
        out << l.candidates_per_probe;
      }
      out << '\n';
    }
  }
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Status StatsWarehouse::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open stats file: " + path);
  std::string header;
  if (!std::getline(in, header) || header != "aqua-stats v1") {
    return Status::ParseError("bad stats file header: " + path);
  }
  auto parse_fp = [](const std::string& hex, uint64_t* fp) {
    char* end = nullptr;
    *fp = std::strtoull(hex.c_str(), &end, 16);
    return end == hex.c_str() + hex.size() && !hex.empty();
  };
  auto parse_cpp = [](const std::string& tok, double* cpp) {
    if (tok == "-") {
      *cpp = -1.0;
      return true;
    }
    char* end = nullptr;
    *cpp = std::strtod(tok.c_str(), &end);
    return end == tok.c_str() + tok.size();
  };
  MutexLock lock(mu_);
  std::string line;
  size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    auto bad = [&] {
      return Status::ParseError("bad stats line " + std::to_string(lineno) +
                                " in " + path);
    };
    if (kind == "record") {
      std::string plan_hex;
      std::string path_tok;
      std::string node_hex;
      std::string cpp_tok;
      Record r;
      ss >> plan_hex >> path_tok >> r.op_name >> node_hex >> r.calls >>
          r.in_rows >> r.out_rows >> r.wall_ns >> r.cpu_ns >> r.selectivity >>
          cpp_tok;
      uint64_t plan_fp = 0;
      if (!ss || !parse_fp(plan_hex, &plan_fp) ||
          !parse_fp(node_hex, &r.node_fp) ||
          !parse_cpp(cpp_tok, &r.candidates_per_probe)) {
        return bad();
      }
      r.last_update_seq = ++update_seq_;
      records_[Key(plan_fp, path_tok)] = std::move(r);
    } else if (kind == "learned") {
      std::string node_hex;
      std::string cpp_tok;
      Learned l;
      ss >> node_hex >> l.calls >> l.selectivity >> cpp_tok;
      uint64_t node_fp = 0;
      if (!ss || !parse_fp(node_hex, &node_fp) ||
          !parse_cpp(cpp_tok, &l.candidates_per_probe)) {
        return bad();
      }
      l.last_update_seq = ++update_seq_;
      learned_[node_fp] = l;
    } else {
      return bad();
    }
  }
  size_t evicted = EvictLocked(CapLocked());
  if (evicted > 0) {
    AQUA_OBS_COUNT("stats.evictions", evicted);
  }
  AQUA_OBS_GAUGE_SET("stats.records_live",
                     static_cast<int64_t>(records_.size()));
  return Status::OK();
}

void StatsWarehouse::Reset() {
  MutexLock lock(mu_);
  records_.clear();
  learned_.clear();
  AQUA_OBS_GAUGE_SET("stats.records_live", 0);
}

size_t StatsWarehouse::size() const {
  MutexLock lock(mu_);
  return records_.size();
}

void StatsWarehouse::set_capacity(size_t cap) {
  MutexLock lock(mu_);
  capacity_ = cap;
  EvictLocked(CapLocked());
}

size_t StatsWarehouse::capacity() const {
  MutexLock lock(mu_);
  return CapLocked();
}

namespace {

Status ResolveStatsPath(const std::string& path, std::string* resolved) {
  if (!path.empty()) {
    *resolved = path;
    return Status::OK();
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("AQUA_STATS_FILE");
  if (env == nullptr || env[0] == '\0') {
    return Status::InvalidArgument(
        "no stats file: pass a path or set AQUA_STATS_FILE");
  }
  *resolved = env;
  return Status::OK();
}

}  // namespace

Status SaveStats(const std::string& path) {
  std::string resolved;
  Status s = ResolveStatsPath(path, &resolved);
  if (!s.ok()) return s;
  return StatsWarehouse::Global().Save(resolved);
}

Status LoadStats(const std::string& path) {
  std::string resolved;
  Status s = ResolveStatsPath(path, &resolved);
  if (!s.ok()) return s;
  return StatsWarehouse::Global().Load(resolved);
}

}  // namespace aqua::obs

#endif  // AQUA_OBS_DISABLED
