#ifndef AQUA_OBS_TASKS_H_
#define AQUA_OBS_TASKS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/query_context.h"

namespace aqua::obs {

/// Point-in-time copy of one in-flight execution, as read out of the task
/// registry (`\tasks` in the shell, `/tasks` in aqua_metricsd).
struct TaskRow {
  uint64_t id = 0;
  uint64_t fingerprint = 0;
  std::string plan;  ///< one-line normalized plan
  uint64_t elapsed_ns = 0;
  uint64_t deadline_in_ns = 0;  ///< ns until the deadline; 0 = unarmed
  bool cancel_requested = false;
  uint32_t threads = 1;
  uint64_t pinned_epoch = 0;  ///< store epoch the query reads against
  const char* current_op = nullptr;  ///< static string or null
  size_t morsels_done = 0;
  size_t morsels_total = 0;
  uint64_t cpu_ns = 0;
  uint64_t mem_bytes = 0;
  uint64_t mem_peak_bytes = 0;
  uint64_t rows = 0;
  uint64_t nodes = 0;
};

#ifndef AQUA_OBS_DISABLED

/// Process-wide registry of in-flight `Executor::Execute` calls, keyed by
/// query id. Registration brackets the execution (the executor holds a
/// `Guard` on its stack), so every entry's `QueryContext` is alive for as
/// long as it is visible here — `Kill` and the watchdog only ever touch
/// live contexts, under the registry lock.
///
/// Publishes the `tasks.active` gauge (`aqua_tasks_active` in OpenMetrics).
class TaskRegistry {
 public:
  static TaskRegistry& Global();

  void Register(QueryContext* q) AQUA_EXCLUDES(mu_);
  void Unregister(QueryContext* q) AQUA_EXCLUDES(mu_);

  /// RAII registration for the executor's stack.
  class Guard {
   public:
    explicit Guard(QueryContext* q) : q_(q) { Global().Register(q_); }
    ~Guard() { Global().Unregister(q_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    QueryContext* q_;
  };

  /// Copies the live table out, ordered by query id (start order).
  std::vector<TaskRow> Snapshot() const AQUA_EXCLUDES(mu_);

  /// Requests cooperative cancellation of query `id`; `NotFound` when no
  /// such query is in flight.
  Status Kill(uint64_t id, std::string_view reason = "was killed")
      AQUA_EXCLUDES(mu_);

  /// Watchdog sweep: cancels every task past its deadline or over its
  /// memory limit. Returns how many tasks this call newly cancelled.
  /// Belt-and-braces next to the workers' own checkpoints — a daemon can
  /// run this on a timer so limits hold even for a wedged worker's peers.
  size_t EnforceLimits() AQUA_EXCLUDES(mu_);

  size_t active() const AQUA_EXCLUDES(mu_);

  /// Aligned table: id, elapsed, cpu, mem, progress, op, plan.
  std::string ToText() const AQUA_EXCLUDES(mu_);
  /// `{"tasks":[{...}...]}`, ordered by query id.
  std::string ToJson() const AQUA_EXCLUDES(mu_);

 private:
  TaskRegistry() = default;

  mutable Mutex mu_;
  /// Live `QueryContext`s, keyed by query id. Pointees are owned by their
  /// executing thread's stack and are only dereferenced under `mu_`
  /// (registration brackets execution, so a visible entry is always alive).
  std::map<uint64_t, QueryContext*> tasks_ AQUA_GUARDED_BY(mu_);
};

#else  // AQUA_OBS_DISABLED

/// Compiled-out stub: nothing registers, kills report NotFound.
class TaskRegistry {
 public:
  static TaskRegistry& Global() {
    static TaskRegistry instance;
    return instance;
  }
  void Register(QueryContext*) {}
  void Unregister(QueryContext*) {}
  class Guard {
   public:
    explicit Guard(QueryContext*) {}
  };
  std::vector<TaskRow> Snapshot() const { return {}; }
  Status Kill(uint64_t id, std::string_view = "was killed") {
    return Status::NotFound("no in-flight query " + std::to_string(id) +
                            " (observability compiled out)");
  }
  size_t EnforceLimits() { return 0; }
  size_t active() const { return 0; }
  std::string ToText() const { return "(no tasks: observability compiled out)\n"; }
  std::string ToJson() const { return "{\"tasks\":[]}"; }
};

#endif  // AQUA_OBS_DISABLED

}  // namespace aqua::obs

#endif  // AQUA_OBS_TASKS_H_
