#ifndef AQUA_OBS_EXPORT_H_
#define AQUA_OBS_EXPORT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "common/status.h"
#include "obs/digest.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/stats.h"

namespace aqua::obs {

/// Options for `ToOpenMetrics`.
struct OpenMetricsOptions {
  /// Metric-name prefix (dots in registry names become underscores).
  std::string prefix = "aqua_";
  /// When set, the digest table is exported as labeled series
  /// (`<prefix>digest_calls_total{digest="<hex>"}` etc.), top rows by
  /// total time first.
  const DigestTable* digests = nullptr;
  size_t max_digests = 50;
  /// When set, the stats warehouse is exported as labeled per-op series
  /// (`<prefix>stats_op_calls_total{plan="<hex>",path="0.0",op="..."}`
  /// etc.), top rows by EWMA wall time first.
  const StatsWarehouse* stats = nullptr;
  size_t max_stats = 50;
};

/// Renders `snap` in OpenMetrics text exposition format: counters (with
/// the mandatory `_total` sample suffix), gauges, and histograms
/// (`_bucket{le=...}` cumulative + `_sum` + `_count`), terminated by
/// `# EOF`. Registry histogram buckets are log-scale, so `le` bounds are
/// the buckets' inclusive integer upper bounds (0, 1, 3, 7, ..., +Inf).
std::string ToOpenMetrics(const Snapshot& snap,
                          const OpenMetricsOptions& opts = {});

/// Validates the OpenMetrics conformance rules this repo relies on:
/// `# TYPE` precedes a family's samples, counters end in `_total`,
/// histogram `le` bounds and cumulative bucket counts are monotone with a
/// final `+Inf` bucket equal to `_count`, and the exposition ends with
/// `# EOF`. Used by tests and by `aqua_metricsd --check`.
Status CheckOpenMetrics(std::string_view text);

/// Parses the request-target out of an HTTP request head: the request line
/// must start with `GET `, the path must be followed by a space (the
/// HTTP-version field), and the line must be `\r\n`-terminated within
/// `req`. Anything else — a truncated line from a client that died
/// mid-send, a garbage greeting, a bare `GET` — is InvalidArgument, which
/// the server answers with 400 rather than misreading it as `/`.
Status ParseHttpRequestPath(std::string_view req, std::string* path);

/// Minimal embedded HTTP/1.1 listener serving the observability surface:
///
///   GET /metrics  — OpenMetrics exposition of the registry + digest table
///                    + stats warehouse
///   GET /digests  — digest table as JSON
///   GET /stats    — runtime statistics warehouse as JSON
///   GET /flight   — flight-recorder dump as JSON
///   GET /tasks    — live task table (in-flight queries) as JSON
///   GET /healthz  — "ok"
///
/// Unknown paths get 404; malformed or truncated request lines get 400.
///
/// One background thread accepts loopback connections and serves one
/// request per connection (Prometheus' scrape pattern). All served data
/// comes from snapshot copies, so scrapes never block query threads.
class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer() { Stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port; see `port()`) and
  /// starts the accept thread.
  Status Start(uint16_t port);
  void Stop();

  bool running() const { return listen_fd_.load() >= 0; }
  /// The bound port (resolved after Start, also for port 0).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  std::string Respond(const std::string& path) const;

  std::atomic<int> listen_fd_{-1};
  std::thread thread_;
  uint16_t port_ = 0;
};

}  // namespace aqua::obs

#endif  // AQUA_OBS_EXPORT_H_
