#include "obs/tasks.h"

#ifndef AQUA_OBS_DISABLED

#include <cstdio>

#include "obs/json.h"
#include "obs/metrics.h"

namespace aqua::obs {

namespace {

/// One-line form of the (indented, multi-line) normalized plan.
std::string FlattenPlan(const std::string& text) {
  std::string out;
  bool at_line_start = true;
  for (char c : text) {
    if (c == '\n') {
      at_line_start = true;
      continue;
    }
    if (at_line_start) {
      if (c == ' ') continue;
      if (!out.empty()) out += " > ";
      at_line_start = false;
    }
    out += c;
  }
  return out;
}

TaskRow RowOf(const QueryContext& q, uint64_t now_ns) {
  TaskRow row;
  row.id = q.id();
  row.fingerprint = q.fingerprint();
  row.plan = FlattenPlan(q.plan_text());
  row.elapsed_ns = now_ns > q.started_ns() ? now_ns - q.started_ns() : 0;
  uint64_t deadline = q.deadline_ns();
  row.deadline_in_ns = deadline > now_ns ? deadline - now_ns : 0;
  row.cancel_requested = q.cancel_requested();
  row.threads = q.threads();
  row.pinned_epoch = q.pinned_epoch();
  row.current_op = q.current_op();
  row.morsels_done = q.morsels_done();
  row.morsels_total = q.morsels_total();
  row.cpu_ns = q.cpu_ns();
  row.mem_bytes = q.mem_bytes();
  row.mem_peak_bytes = q.mem_peak_bytes();
  row.rows = q.rows();
  row.nodes = q.nodes();
  return row;
}

}  // namespace

TaskRegistry& TaskRegistry::Global() {
  static TaskRegistry* instance = new TaskRegistry();  // leaked
  return *instance;
}

void TaskRegistry::Register(QueryContext* q) {
  if (q == nullptr) return;
  size_t n;
  {
    MutexLock lock(mu_);
    tasks_[q->id()] = q;
    n = tasks_.size();
  }
  AQUA_OBS_GAUGE_SET("tasks.active", static_cast<int64_t>(n));
}

void TaskRegistry::Unregister(QueryContext* q) {
  if (q == nullptr) return;
  size_t n;
  {
    MutexLock lock(mu_);
    tasks_.erase(q->id());
    n = tasks_.size();
  }
  AQUA_OBS_GAUGE_SET("tasks.active", static_cast<int64_t>(n));
}

std::vector<TaskRow> TaskRegistry::Snapshot() const {
  uint64_t now = QueryContext::NowNs();
  std::vector<TaskRow> rows;
  MutexLock lock(mu_);
  rows.reserve(tasks_.size());
  for (const auto& [id, q] : tasks_) rows.push_back(RowOf(*q, now));
  return rows;
}

Status TaskRegistry::Kill(uint64_t id, std::string_view reason) {
  MutexLock lock(mu_);
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("no in-flight query " + std::to_string(id));
  }
  it->second->Cancel(StatusCode::kCancelled, reason);
  AQUA_OBS_COUNT("tasks.kills", 1);
  return Status::OK();
}

size_t TaskRegistry::EnforceLimits() {
  uint64_t now = QueryContext::NowNs();
  size_t cancelled = 0;
  {
    MutexLock lock(mu_);
    for (const auto& [id, q] : tasks_) {
      if (q->cancel_requested()) continue;
      uint64_t deadline = q->deadline_ns();
      if (deadline != 0 && now >= deadline) {
        q->Cancel(StatusCode::kDeadlineExceeded,
                  "exceeded its deadline (watchdog)");
        ++cancelled;
      } else if (q->mem_limit_bytes() != 0 &&
                 q->mem_bytes() > q->mem_limit_bytes()) {
        q->Cancel(StatusCode::kCancelled,
                  "exceeded its memory limit (watchdog)");
        ++cancelled;
      }
    }
  }
  if (cancelled > 0) AQUA_OBS_COUNT("tasks.watchdog_cancels", cancelled);
  return cancelled;
}

size_t TaskRegistry::active() const {
  MutexLock lock(mu_);
  return tasks_.size();
}

std::string TaskRegistry::ToText() const {
  std::vector<TaskRow> rows = Snapshot();
  std::string out =
      "id      elapsed_ms  cpu_ms     mem_kb     peak_kb    epoch  morsels "
      "    op               plan\n";
  for (const TaskRow& r : rows) {
    char buf[176];
    std::snprintf(buf, sizeof(buf),
                  "%-7llu %-11.1f %-10.1f %-10llu %-10llu %-6llu %5zu/%-5zu "
                  "%-16s ",
                  static_cast<unsigned long long>(r.id),
                  static_cast<double>(r.elapsed_ns) / 1e6,
                  static_cast<double>(r.cpu_ns) / 1e6,
                  static_cast<unsigned long long>(r.mem_bytes / 1024),
                  static_cast<unsigned long long>(r.mem_peak_bytes / 1024),
                  static_cast<unsigned long long>(r.pinned_epoch),
                  r.morsels_done, r.morsels_total,
                  r.current_op != nullptr ? r.current_op : "-");
    out += buf;
    out += r.plan;
    if (r.cancel_requested) out += "  [cancelling]";
    out += '\n';
  }
  if (rows.empty()) out += "(no queries in flight)\n";
  return out;
}

std::string TaskRegistry::ToJson() const {
  std::vector<TaskRow> rows = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("tasks").BeginArray();
  for (const TaskRow& r : rows) {
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    w.BeginObject();
    w.Key("id").Uint(r.id);
    w.Key("fingerprint").String(fp);
    w.Key("plan").String(r.plan);
    w.Key("elapsed_ns").Uint(r.elapsed_ns);
    w.Key("deadline_in_ns").Uint(r.deadline_in_ns);
    w.Key("cancel_requested").Bool(r.cancel_requested);
    w.Key("threads").Uint(r.threads);
    w.Key("pinned_epoch").Uint(r.pinned_epoch);
    w.Key("current_op").String(r.current_op != nullptr ? r.current_op : "");
    w.Key("morsels_done").Uint(r.morsels_done);
    w.Key("morsels_total").Uint(r.morsels_total);
    w.Key("cpu_ns").Uint(r.cpu_ns);
    w.Key("mem_bytes").Uint(r.mem_bytes);
    w.Key("mem_peak_bytes").Uint(r.mem_peak_bytes);
    w.Key("rows").Uint(r.rows);
    w.Key("nodes").Uint(r.nodes);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace aqua::obs

#endif  // AQUA_OBS_DISABLED
