#include "obs/query_context.h"

#ifndef AQUA_OBS_DISABLED

#include <time.h>

#include <cstdlib>

#include "obs/metrics.h"

namespace aqua::obs {

namespace {

std::atomic<uint64_t> g_next_query_id{1};

uint64_t ClockNs(clockid_t clock) {
  timespec ts{};
  if (clock_gettime(clock, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

uint64_t MonotonicEpochNs() {
  static const uint64_t epoch = ClockNs(CLOCK_MONOTONIC);
  return epoch;
}

thread_local QueryContext* t_current_query = nullptr;

}  // namespace

uint64_t QueryContext::NowNs() {
  // Pin the epoch before the current reading: on the process's very first
  // call the epoch static initializes from its own (later) clock sample,
  // and subtracting it from an earlier reading would wrap.
  const uint64_t epoch = MonotonicEpochNs();
  return ClockNs(CLOCK_MONOTONIC) - epoch;
}

uint64_t QueryContext::ThreadCpuNs() {
  return ClockNs(CLOCK_THREAD_CPUTIME_ID);
}

QueryContext::QueryContext()
    : id_(g_next_query_id.fetch_add(1, std::memory_order_relaxed)),
      started_ns_(NowNs()) {}

QueryContext::~QueryContext() {
  // Undo this query's residual contribution to the process-wide gauge
  // (operator outputs still charged when the query returned its result).
  int64_t residual = mem_bytes_.load(std::memory_order_relaxed);
  if (residual != 0) AQUA_OBS_GAUGE_ADD("query.mem_bytes", -residual);
}

void QueryContext::set_deadline_after_ns(uint64_t timeout_ns) {
  deadline_ns_.store(timeout_ns == 0 ? 0 : NowNs() + timeout_ns,
                     std::memory_order_relaxed);
}

void QueryContext::Cancel(StatusCode code, std::string_view detail) {
  if (code == StatusCode::kOk) return;
  std::lock_guard<std::mutex> lock(cancel_mu_);
  if (cancel_code_.load(std::memory_order_relaxed) != 0) return;
  cancel_detail_ = std::string(detail);
  // Release: a checkpoint that acquires a non-zero code sees the detail.
  cancel_code_.store(static_cast<uint32_t>(code), std::memory_order_release);
}

Status QueryContext::CancelStatus() const {
  uint32_t code = cancel_code_.load(std::memory_order_acquire);
  if (code == 0) return Status::OK();
  std::string detail;
  {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    detail = cancel_detail_;
  }
  std::string msg = "query " + std::to_string(id_) + " " + detail;
  return Status(static_cast<StatusCode>(code), std::move(msg));
}

Status QueryContext::CheckPoint() {
  if (cancel_code_.load(std::memory_order_relaxed) != 0) {
    return CancelStatus();
  }
  uint64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && NowNs() >= deadline) {
    Cancel(StatusCode::kDeadlineExceeded, "exceeded its deadline");
    return CancelStatus();
  }
  if (mem_limit_bytes_ != 0 && mem_bytes() > mem_limit_bytes_) {
    Cancel(StatusCode::kCancelled,
           "exceeded its memory limit (" + std::to_string(mem_bytes()) +
               " > " + std::to_string(mem_limit_bytes_) + " bytes)");
    return CancelStatus();
  }
  return Status::OK();
}

void QueryContext::AddMem(int64_t delta) {
  if (delta == 0) return;
  int64_t now = mem_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (now > 0) {
    uint64_t cur = static_cast<uint64_t>(now);
    uint64_t peak = mem_peak_bytes_.load(std::memory_order_relaxed);
    while (peak < cur && !mem_peak_bytes_.compare_exchange_weak(
                             peak, cur, std::memory_order_relaxed)) {
    }
  }
  AQUA_OBS_GAUGE_ADD("query.mem_bytes", delta);
}

QueryContext* QueryContext::Current() { return t_current_query; }

QueryContext::Scope::Scope(QueryContext* q) : prev_(t_current_query) {
  t_current_query = q;
}

QueryContext::Scope::~Scope() { t_current_query = prev_; }

namespace {

uint64_t EnvUint(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at init.
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw, &end, 10);
  return end == raw ? 0 : static_cast<uint64_t>(v);
}

}  // namespace

uint64_t DefaultQueryTimeoutNs() {
  return EnvUint("AQUA_QUERY_TIMEOUT_MS") * 1000000ull;
}

uint64_t DefaultQueryMemLimitBytes() {
  return EnvUint("AQUA_QUERY_MEM_LIMIT_MB") * 1024ull * 1024ull;
}

}  // namespace aqua::obs

#endif  // AQUA_OBS_DISABLED
