#include "object/schema.h"

namespace aqua {

TypeDef::TypeDef(std::string name, std::vector<AttrDef> attrs)
    : name_(std::move(name)), attrs_(std::move(attrs)) {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    index_.emplace(attrs_[i].name, i);
  }
}

Result<size_t> TypeDef::AttrIndex(const std::string& attr_name) const {
  auto it = index_.find(attr_name);
  if (it == index_.end()) {
    return Status::NotFound("type '" + name_ + "' has no attribute '" +
                            attr_name + "'");
  }
  return it->second;
}

bool TypeDef::HasAttr(const std::string& attr_name) const {
  return index_.count(attr_name) > 0;
}

Result<TypeId> Schema::RegisterType(std::string name,
                                    std::vector<AttrDef> attrs) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("type '" + name + "' already registered");
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      if (attrs[i].name == attrs[j].name) {
        return Status::InvalidArgument("duplicate attribute '" +
                                       attrs[i].name + "' in type '" + name +
                                       "'");
      }
    }
  }
  TypeId id = static_cast<TypeId>(types_.size());
  by_name_.emplace(name, id);
  types_.emplace_back(std::move(name), std::move(attrs));
  return id;
}

Result<TypeId> Schema::TypeIdOf(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("unknown type '" + name + "'");
  }
  return it->second;
}

Result<const TypeDef*> Schema::GetType(TypeId id) const {
  if (id >= types_.size()) {
    return Status::NotFound("unknown type id " + std::to_string(id));
  }
  return &types_[id];
}

Result<const TypeDef*> Schema::GetType(const std::string& name) const {
  AQUA_ASSIGN_OR_RETURN(TypeId id, TypeIdOf(name));
  return &types_[id];
}

}  // namespace aqua
