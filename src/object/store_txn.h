#ifndef AQUA_OBJECT_STORE_TXN_H_
#define AQUA_OBJECT_STORE_TXN_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/value.h"
#include "object/object.h"
#include "object/schema.h"
#include "object/store_view.h"

namespace aqua {

class ObjectStore;

/// Oids allocated inside a `DeltaTxn` are provisional: the high bit is set
/// and the low bits index the txn's creation sequence. `CommitBatch`
/// rewrites them to final oids when the delta folds into the head.
inline constexpr uint64_t kProvisionalOidBit = uint64_t{1} << 63;

inline bool IsProvisionalOid(Oid oid) {
  return (oid.value & kProvisionalOidBit) != 0;
}
inline size_t ProvisionalOidIndex(Oid oid) {
  return static_cast<size_t>(oid.value & ~kProvisionalOidBit);
}
inline Oid MakeProvisionalOid(size_t index) {
  return Oid(kProvisionalOidBit | static_cast<uint64_t>(index));
}

/// One buffered in-place attribute write to a pre-existing object.
struct AttrWrite {
  Oid oid;  // a committed (never provisional) oid
  uint32_t attr_index = 0;
  Value value;  // may contain provisional refs; rewritten at commit
};

/// The store effect of evaluating one apply item: objects it created (with
/// provisional oids) and in-place writes it buffered. Deltas fold into the
/// head in item order (`ObjectStore::CommitBatch`), which reproduces the
/// exact oid-allocation sequence of a serial left-to-right evaluation —
/// the delta-merge determinism rule.
struct ItemDelta {
  std::vector<Object> created;
  std::vector<AttrWrite> writes;

  bool empty() const { return created.empty() && writes.empty(); }
};

/// The store surface `FnExpr::Eval` runs against: reads plus the two write
/// primitives (`Create`, `SetAttr`). Two implementations — `DirectTxn`
/// applies writes to the head immediately (the serial path), `DeltaTxn`
/// buffers them against a snapshot (the morsel-parallel path).
class StoreTxn {
 public:
  virtual ~StoreTxn() = default;

  virtual const Schema& schema() const = 0;
  virtual Result<const Object*> Get(Oid oid) const = 0;
  virtual Result<Value> GetAttr(Oid oid, const std::string& attr) const = 0;
  virtual Result<Oid> Create(TypeId type, std::vector<Value> attrs) = 0;
  virtual Status SetAttr(Oid oid, const std::string& attr, Value value) = 0;
};

/// Head passthrough: every call lands on the `ObjectStore` directly, with
/// the store's own locking. Semantics identical to the pre-versioned
/// evaluation path.
class DirectTxn : public StoreTxn {
 public:
  explicit DirectTxn(ObjectStore* store) : store_(store) {}

  const Schema& schema() const override;
  Result<const Object*> Get(Oid oid) const override;
  Result<Value> GetAttr(Oid oid, const std::string& attr) const override;
  Result<Oid> Create(TypeId type, std::vector<Value> attrs) override;
  Status SetAttr(Oid oid, const std::string& attr, Value value) override;

 private:
  ObjectStore* store_;
};

/// Snapshot-isolated overlay: reads resolve against one pinned epoch (plus
/// this txn's own effects — read-your-writes within an item), writes buffer
/// into an `ItemDelta`. Creation validates eagerly with the same checks as
/// the head path, so a clean delta cannot fail at commit.
class DeltaTxn : public StoreTxn {
 public:
  explicit DeltaTxn(StoreView view) : view_(std::move(view)) {}

  const Schema& schema() const override { return view_.schema(); }
  Result<const Object*> Get(Oid oid) const override;
  Result<Value> GetAttr(Oid oid, const std::string& attr) const override;
  Result<Oid> Create(TypeId type, std::vector<Value> attrs) override;
  Status SetAttr(Oid oid, const std::string& attr, Value value) override;

  const StoreView& view() const { return view_; }
  bool has_effects() const {
    return !created_.empty() || !writes_.empty();
  }

  /// Moves the accumulated effects out, resetting the txn for reuse on the
  /// next item.
  ItemDelta Take();

 private:
  StoreView view_;
  // Deque: `Get` hands out pointers into created objects, which must
  // survive later `Create` calls within the same item.
  std::deque<Object> created_;
  std::vector<AttrWrite> writes_;
  // Read-your-writes overlay for in-place writes to committed objects:
  // first write copies the object out of the snapshot, later reads of that
  // oid resolve here.
  std::unordered_map<uint64_t, Object> patched_;
};

}  // namespace aqua

#endif  // AQUA_OBJECT_STORE_TXN_H_
