#ifndef AQUA_OBJECT_OBJECT_H_
#define AQUA_OBJECT_OBJECT_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/value.h"
#include "object/schema.h"

namespace aqua {

/// A stored object: identity + type + attribute values.
///
/// Attribute values are stored positionally, aligned with the `TypeDef`'s
/// attribute list; lookup by name goes through the type.
class Object {
 public:
  Object(Oid oid, TypeId type, std::vector<Value> attrs)
      : oid_(oid), type_(type), attrs_(std::move(attrs)) {}

  Oid oid() const { return oid_; }
  TypeId type() const { return type_; }
  const std::vector<Value>& attrs() const { return attrs_; }

  const Value& attr_at(size_t i) const { return attrs_[i]; }
  void set_attr_at(size_t i, Value v) { attrs_[i] = std::move(v); }

 private:
  Oid oid_;
  TypeId type_;
  std::vector<Value> attrs_;
};

}  // namespace aqua

#endif  // AQUA_OBJECT_OBJECT_H_
