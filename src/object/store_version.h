#ifndef AQUA_OBJECT_STORE_VERSION_H_
#define AQUA_OBJECT_STORE_VERSION_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "object/object.h"
#include "object/schema.h"

namespace aqua {

/// Object storage is chunked: a chunk holds up to `kStoreChunkSize` objects
/// and never reallocates once created, so `Object*` handles stay valid while
/// the store grows (oid N lives in chunk (N-1)>>shift, slot (N-1)&mask).
inline constexpr size_t kStoreChunkShift = 8;
inline constexpr size_t kStoreChunkSize = size_t{1} << kStoreChunkShift;
inline constexpr size_t kStoreChunkMask = kStoreChunkSize - 1;

/// One fixed-capacity run of objects. A chunk referenced by more than one
/// version directory is immutable by convention: the store clones it before
/// any write (copy-on-write), so snapshot readers never observe a mutation —
/// not even an append, which would race on the vector's size.
struct StoreChunk {
  StoreChunk() { objects.reserve(kStoreChunkSize); }
  std::vector<Object> objects;
};

/// A per-type extent (creation-order oid list) owned by a version. Holding
/// one pins it: the store sees the extra refcount and copies-on-write
/// instead of mutating, so an extent observed by a query is stable for the
/// query's whole execution.
using ExtentRef = std::shared_ptr<const std::vector<Oid>>;

/// One immutable epoch of the object base: a chunk directory plus the
/// per-type extent directory, frozen at `num_objects`. Readers holding a
/// version (via `StoreView`) run lock-free; the shared_ptr refcount doubles
/// as the snapshot pin that keeps the epoch's chunks alive and
/// copy-on-write-protected until the last reader drops it.
struct StoreVersion {
  uint64_t epoch = 0;
  uint64_t num_objects = 0;
  const Schema* schema = nullptr;
  std::vector<std::shared_ptr<const StoreChunk>> chunks;
  std::vector<ExtentRef> extents;  // indexed by TypeId
};

}  // namespace aqua

#endif  // AQUA_OBJECT_STORE_VERSION_H_
