#include "object/object_store.h"

namespace aqua {

Status ObjectStore::CheckAndCoerce(const AttrDef& def, Value* value) const {
  if (value->is_null()) return Status::OK();
  if (def.type == ValueType::kDouble && value->is_int()) {
    *value = Value::Double(static_cast<double>(value->int_value()));
    return Status::OK();
  }
  if (value->type() != def.type) {
    return Status::TypeError("attribute '" + def.name + "' expects " +
                             ValueTypeToString(def.type) + ", got " +
                             ValueTypeToString(value->type()));
  }
  return Status::OK();
}

Result<Oid> ObjectStore::Create(TypeId type, std::vector<Value> attrs) {
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema_.GetType(type));
  if (attrs.size() != def->num_attrs()) {
    return Status::InvalidArgument(
        "type '" + def->name() + "' expects " +
        std::to_string(def->num_attrs()) + " attributes, got " +
        std::to_string(attrs.size()));
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    AQUA_RETURN_IF_ERROR(CheckAndCoerce(def->attrs()[i], &attrs[i]));
  }
  Oid oid(objects_.size() + 1);
  objects_.emplace_back(oid, type, std::move(attrs));
  if (extents_.size() <= type) extents_.resize(type + 1);
  extents_[type].push_back(oid);
  return oid;
}

Result<Oid> ObjectStore::Create(const std::string& type_name,
                                std::vector<AttrValue> attrs) {
  AQUA_ASSIGN_OR_RETURN(TypeId type, schema_.TypeIdOf(type_name));
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema_.GetType(type));
  std::vector<Value> positional(def->num_attrs());
  for (auto& av : attrs) {
    AQUA_ASSIGN_OR_RETURN(size_t idx, def->AttrIndex(av.name));
    positional[idx] = std::move(av.value);
  }
  return Create(type, std::move(positional));
}

Result<const Object*> ObjectStore::Get(Oid oid) const {
  if (oid.IsNull() || oid.value > objects_.size()) {
    return Status::NotFound("no object with oid " + std::to_string(oid.value));
  }
  return &objects_[oid.value - 1];
}

Result<Object*> ObjectStore::GetMutable(Oid oid) {
  if (oid.IsNull() || oid.value > objects_.size()) {
    return Status::NotFound("no object with oid " + std::to_string(oid.value));
  }
  return &objects_[oid.value - 1];
}

bool ObjectStore::Contains(Oid oid) const {
  return !oid.IsNull() && oid.value <= objects_.size();
}

Result<Value> ObjectStore::GetAttr(Oid oid, const std::string& attr) const {
  AQUA_ASSIGN_OR_RETURN(const Object* obj, Get(oid));
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema_.GetType(obj->type()));
  AQUA_ASSIGN_OR_RETURN(size_t idx, def->AttrIndex(attr));
  return obj->attr_at(idx);
}

Status ObjectStore::SetAttr(Oid oid, const std::string& attr, Value value) {
  AQUA_ASSIGN_OR_RETURN(Object * obj, GetMutable(oid));
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema_.GetType(obj->type()));
  AQUA_ASSIGN_OR_RETURN(size_t idx, def->AttrIndex(attr));
  AQUA_RETURN_IF_ERROR(CheckAndCoerce(def->attrs()[idx], &value));
  obj->set_attr_at(idx, std::move(value));
  return Status::OK();
}

Result<const std::vector<Oid>*> ObjectStore::Extent(TypeId type) const {
  AQUA_RETURN_IF_ERROR(schema_.GetType(type).status());
  static const std::vector<Oid> kEmpty;
  if (type >= extents_.size()) return &kEmpty;
  return &extents_[type];
}

Result<const std::vector<Oid>*> ObjectStore::Extent(
    const std::string& type_name) const {
  AQUA_ASSIGN_OR_RETURN(TypeId type, schema_.TypeIdOf(type_name));
  return Extent(type);
}

}  // namespace aqua
