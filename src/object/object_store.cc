#include "object/object_store.h"

#include <unordered_set>

namespace aqua {

Status CheckAttrValue(const AttrDef& def, Value* value) {
  if (value->is_null()) return Status::OK();
  if (def.type == ValueType::kDouble && value->is_int()) {
    *value = Value::Double(static_cast<double>(value->int_value()));
    return Status::OK();
  }
  if (value->type() != def.type) {
    return Status::TypeError("attribute '" + def.name + "' expects " +
                             ValueTypeToString(def.type) + ", got " +
                             ValueTypeToString(value->type()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Internal machinery (callers hold mu_)

void ObjectStore::BeginMutation() {
  // The head version doubles as the "has this epoch been observed" flag:
  // it exists exactly when someone may hold the current state, so the
  // first mutation after a snapshot opens a new epoch and detaches the
  // cache (whose chunks then stay alive only through external pins).
  if (head_version_ != nullptr) {
    ++epoch_;
    head_version_.reset();
  }
}

StoreChunk* ObjectStore::WritableChunk(size_t index) {
  std::shared_ptr<StoreChunk>& slot = chunks_[index];
  // use_count > 1 means a live version still references this chunk. The
  // count can only grow under mu_ (SnapshotLocked), so a racing reader
  // dropping its pin at worst makes us clone once more than needed.
  if (slot.use_count() > 1) {
    auto clone = std::make_shared<StoreChunk>();
    clone->objects.insert(clone->objects.end(), slot->objects.begin(),
                          slot->objects.end());
    slot = std::move(clone);
    ++cow_copies_;
  }
  return slot.get();
}

Oid ObjectStore::AppendValidated(TypeId type, std::vector<Value> attrs) {
  size_t index = num_objects_;
  Oid oid(num_objects_ + 1);
  size_t chunk_index = index >> kStoreChunkShift;
  if (chunk_index == chunks_.size()) {
    chunks_.push_back(std::make_shared<StoreChunk>());
  }
  // Appends also copy-on-write: pushing into a snapshot-shared chunk would
  // race with readers on the vector size.
  WritableChunk(chunk_index)
      ->objects.emplace_back(oid, type, std::move(attrs));
  ++num_objects_;

  if (extents_.size() <= type) extents_.resize(type + 1);
  std::shared_ptr<std::vector<Oid>>& extent = extents_[type];
  if (extent == nullptr) {
    extent = std::make_shared<std::vector<Oid>>();
  } else if (extent.use_count() > 1) {
    extent = std::make_shared<std::vector<Oid>>(*extent);
    ++cow_copies_;
  }
  extent->push_back(oid);
  return oid;
}

Result<Oid> ObjectStore::CreateLocked(TypeId type, std::vector<Value> attrs) {
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema_.GetType(type));
  if (attrs.size() != def->num_attrs()) {
    return Status::InvalidArgument(
        "type '" + def->name() + "' expects " +
        std::to_string(def->num_attrs()) + " attributes, got " +
        std::to_string(attrs.size()));
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    AQUA_RETURN_IF_ERROR(CheckAttrValue(def->attrs()[i], &attrs[i]));
  }
  BeginMutation();
  return AppendValidated(type, std::move(attrs));
}

Result<const Object*> ObjectStore::GetLocked(Oid oid) const {
  if (oid.IsNull() || oid.value > num_objects_) {
    return Status::NotFound("no object with oid " + std::to_string(oid.value));
  }
  size_t index = oid.value - 1;
  return &chunks_[index >> kStoreChunkShift]
              ->objects[index & kStoreChunkMask];
}

Status ObjectStore::SetAttrLocked(Oid oid, size_t attr_index, Value value) {
  if (oid.IsNull() || oid.value > num_objects_) {
    return Status::NotFound("no object with oid " + std::to_string(oid.value));
  }
  size_t index = oid.value - 1;
  StoreChunk* chunk = WritableChunk(index >> kStoreChunkShift);
  chunk->objects[index & kStoreChunkMask].set_attr_at(attr_index,
                                                      std::move(value));
  return Status::OK();
}

std::shared_ptr<const StoreVersion> ObjectStore::SnapshotLocked() const {
  if (head_version_ == nullptr) {
    auto version = std::make_shared<StoreVersion>();
    version->epoch = epoch_;
    version->num_objects = num_objects_;
    version->schema = &schema_;
    version->chunks.assign(chunks_.begin(), chunks_.end());
    version->extents.assign(extents_.begin(), extents_.end());
    head_version_ = version;
    retained_.push_back(version);
    PruneRetainedLocked();
  }
  return head_version_;
}

void ObjectStore::PruneRetainedLocked() const {
  size_t kept = 0;
  for (size_t i = 0; i < retained_.size(); ++i) {
    if (retained_[i].expired()) continue;
    // Guard the self-assignment: moving a weak_ptr onto itself empties it.
    if (kept != i) retained_[kept] = std::move(retained_[i]);
    ++kept;
  }
  retained_.resize(kept);
}

// ---------------------------------------------------------------------------
// Public surface

Result<Oid> ObjectStore::Create(TypeId type, std::vector<Value> attrs) {
  MutexLock lock(mu_);
  return CreateLocked(type, std::move(attrs));
}

Result<Oid> ObjectStore::Create(const std::string& type_name,
                                std::vector<AttrValue> attrs) {
  AQUA_ASSIGN_OR_RETURN(TypeId type, schema_.TypeIdOf(type_name));
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema_.GetType(type));
  std::vector<Value> positional(def->num_attrs());
  for (auto& av : attrs) {
    AQUA_ASSIGN_OR_RETURN(size_t idx, def->AttrIndex(av.name));
    positional[idx] = std::move(av.value);
  }
  return Create(type, std::move(positional));
}

Result<const Object*> ObjectStore::Get(Oid oid) const {
  MutexLock lock(mu_);
  return GetLocked(oid);
}

Result<Object*> ObjectStore::GetMutable(Oid oid) {
  MutexLock lock(mu_);
  if (oid.IsNull() || oid.value > num_objects_) {
    return Status::NotFound("no object with oid " + std::to_string(oid.value));
  }
  BeginMutation();
  size_t index = oid.value - 1;
  StoreChunk* chunk = WritableChunk(index >> kStoreChunkShift);
  return &chunk->objects[index & kStoreChunkMask];
}

bool ObjectStore::Contains(Oid oid) const {
  MutexLock lock(mu_);
  return !oid.IsNull() && oid.value <= num_objects_;
}

Result<Value> ObjectStore::GetAttr(Oid oid, const std::string& attr) const {
  MutexLock lock(mu_);
  AQUA_ASSIGN_OR_RETURN(const Object* obj, GetLocked(oid));
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema_.GetType(obj->type()));
  AQUA_ASSIGN_OR_RETURN(size_t idx, def->AttrIndex(attr));
  return obj->attr_at(idx);
}

Status ObjectStore::SetAttr(Oid oid, const std::string& attr, Value value) {
  MutexLock lock(mu_);
  AQUA_ASSIGN_OR_RETURN(const Object* obj, GetLocked(oid));
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema_.GetType(obj->type()));
  AQUA_ASSIGN_OR_RETURN(size_t idx, def->AttrIndex(attr));
  AQUA_RETURN_IF_ERROR(CheckAttrValue(def->attrs()[idx], &value));
  BeginMutation();
  return SetAttrLocked(oid, idx, std::move(value));
}

Result<ExtentRef> ObjectStore::Extent(TypeId type) const {
  AQUA_RETURN_IF_ERROR(schema_.GetType(type).status());
  MutexLock lock(mu_);
  static const ExtentRef kEmpty = std::make_shared<const std::vector<Oid>>();
  if (type >= extents_.size() || extents_[type] == nullptr) return kEmpty;
  // The converting copy shares the control block: a held extent raises the
  // refcount, so later appends clone instead of growing it under the
  // holder.
  return ExtentRef(extents_[type]);
}

Result<ExtentRef> ObjectStore::Extent(const std::string& type_name) const {
  AQUA_ASSIGN_OR_RETURN(TypeId type, schema_.TypeIdOf(type_name));
  return Extent(type);
}

size_t ObjectStore::num_objects() const {
  MutexLock lock(mu_);
  return num_objects_;
}

StoreView ObjectStore::Snapshot() const {
  MutexLock lock(mu_);
  return StoreView(SnapshotLocked());
}

namespace {

// Rewrites a provisional ref to the final oid its creation received.
Status RemapValue(const std::vector<Oid>& finals, Value* value) {
  if (!value->is_ref() || !IsProvisionalOid(value->ref_value())) {
    return Status::OK();
  }
  size_t index = ProvisionalOidIndex(value->ref_value());
  if (index >= finals.size()) {
    return Status::Internal("delta references provisional oid " +
                            std::to_string(index) + " never created");
  }
  *value = Value::Ref(finals[index]);
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<Oid>>> ObjectStore::CommitBatch(
    std::vector<ItemDelta> deltas) {
  MutexLock lock(mu_);
  BeginMutation();
  std::vector<std::vector<Oid>> finals(deltas.size());
  for (size_t d = 0; d < deltas.size(); ++d) {
    ItemDelta& delta = deltas[d];
    std::vector<Oid>& map = finals[d];
    map.reserve(delta.created.size());
    // Creations fold in item order, so final oids replay the sequence a
    // serial left-to-right evaluation would have allocated.
    for (const Object& obj : delta.created) {
      std::vector<Value> attrs = obj.attrs();
      for (Value& v : attrs) {
        AQUA_RETURN_IF_ERROR(RemapValue(map, &v));
      }
      map.push_back(AppendValidated(obj.type(), std::move(attrs)));
    }
    for (AttrWrite& write : delta.writes) {
      AQUA_RETURN_IF_ERROR(RemapValue(map, &write.value));
      AQUA_RETURN_IF_ERROR(
          SetAttrLocked(write.oid, write.attr_index, std::move(write.value)));
    }
  }
  return finals;
}

// ---------------------------------------------------------------------------
// Introspection

uint64_t ObjectStore::epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

size_t ObjectStore::versions_live() const {
  MutexLock lock(mu_);
  PruneRetainedLocked();
  return retained_.size();
}

size_t ObjectStore::snapshot_pins() const {
  MutexLock lock(mu_);
  size_t pins = 0;
  for (const std::weak_ptr<const StoreVersion>& weak : retained_) {
    std::shared_ptr<const StoreVersion> version = weak.lock();
    if (version == nullptr) continue;
    long count = version.use_count() - 1;  // minus this local handle
    if (version == head_version_) --count;  // minus the store's own cache
    if (count > 0) pins += static_cast<size_t>(count);
  }
  return pins;
}

uint64_t ObjectStore::cow_copies() const {
  MutexLock lock(mu_);
  return cow_copies_;
}

namespace {

size_t ApproxChunkBytes(const StoreChunk& chunk) {
  size_t bytes = sizeof(StoreChunk) + chunk.objects.capacity() * sizeof(Object);
  for (const Object& obj : chunk.objects) {
    bytes += obj.attrs().capacity() * sizeof(Value);
  }
  return bytes;
}

}  // namespace

size_t ObjectStore::retained_bytes() const {
  MutexLock lock(mu_);
  // Superseded data only: chunks/extents referenced by a live version that
  // the head no longer uses (data the head still shares costs nothing
  // extra to retain).
  std::unordered_set<const void*> head;
  for (const auto& chunk : chunks_) head.insert(chunk.get());
  for (const auto& extent : extents_) head.insert(extent.get());
  std::unordered_set<const void*> counted;
  size_t bytes = 0;
  for (const std::weak_ptr<const StoreVersion>& weak : retained_) {
    std::shared_ptr<const StoreVersion> version = weak.lock();
    if (version == nullptr) continue;
    for (const auto& chunk : version->chunks) {
      if (head.count(chunk.get()) != 0) continue;
      if (!counted.insert(chunk.get()).second) continue;
      bytes += ApproxChunkBytes(*chunk);
    }
    for (const auto& extent : version->extents) {
      if (extent == nullptr || head.count(extent.get()) != 0) continue;
      if (!counted.insert(extent.get()).second) continue;
      bytes += sizeof(std::vector<Oid>) + extent->capacity() * sizeof(Oid);
    }
  }
  return bytes;
}

}  // namespace aqua
