#include "object/store_view.h"

#include "object/object_store.h"

namespace aqua {

StoreView::StoreView(const ObjectStore& store)
    : version_(store.Snapshot().version()) {}

Result<const Object*> StoreView::Get(Oid oid) const {
  if (version_ == nullptr || oid.IsNull() ||
      oid.value > version_->num_objects) {
    return Status::NotFound("no object with oid " + std::to_string(oid.value));
  }
  size_t index = oid.value - 1;
  const StoreChunk& chunk = *version_->chunks[index >> kStoreChunkShift];
  return &chunk.objects[index & kStoreChunkMask];
}

Result<Value> StoreView::GetAttr(Oid oid, const std::string& attr) const {
  AQUA_ASSIGN_OR_RETURN(const Object* obj, Get(oid));
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def,
                        version_->schema->GetType(obj->type()));
  AQUA_ASSIGN_OR_RETURN(size_t idx, def->AttrIndex(attr));
  return obj->attr_at(idx);
}

Result<ExtentRef> StoreView::Extent(TypeId type) const {
  if (version_ == nullptr) {
    return Status::InvalidArgument("extent lookup on an empty StoreView");
  }
  AQUA_RETURN_IF_ERROR(version_->schema->GetType(type).status());
  static const ExtentRef kEmpty = std::make_shared<const std::vector<Oid>>();
  if (type >= version_->extents.size() || version_->extents[type] == nullptr) {
    return kEmpty;
  }
  return version_->extents[type];
}

Result<ExtentRef> StoreView::Extent(const std::string& type_name) const {
  if (version_ == nullptr) {
    return Status::InvalidArgument("extent lookup on an empty StoreView");
  }
  AQUA_ASSIGN_OR_RETURN(TypeId type, version_->schema->TypeIdOf(type_name));
  return Extent(type);
}

}  // namespace aqua
