#include "object/store_txn.h"

#include "object/object_store.h"

namespace aqua {

const Schema& DirectTxn::schema() const { return store_->schema(); }

Result<const Object*> DirectTxn::Get(Oid oid) const {
  return store_->Get(oid);
}

Result<Value> DirectTxn::GetAttr(Oid oid, const std::string& attr) const {
  return store_->GetAttr(oid, attr);
}

Result<Oid> DirectTxn::Create(TypeId type, std::vector<Value> attrs) {
  return store_->Create(type, std::move(attrs));
}

Status DirectTxn::SetAttr(Oid oid, const std::string& attr, Value value) {
  return store_->SetAttr(oid, attr, std::move(value));
}

Result<const Object*> DeltaTxn::Get(Oid oid) const {
  if (IsProvisionalOid(oid)) {
    size_t index = ProvisionalOidIndex(oid);
    if (index >= created_.size()) {
      return Status::NotFound("no object with oid " +
                              std::to_string(oid.value));
    }
    return &created_[index];
  }
  auto patched = patched_.find(oid.value);
  if (patched != patched_.end()) return &patched->second;
  return view_.Get(oid);
}

Result<Value> DeltaTxn::GetAttr(Oid oid, const std::string& attr) const {
  AQUA_ASSIGN_OR_RETURN(const Object* obj, Get(oid));
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema().GetType(obj->type()));
  AQUA_ASSIGN_OR_RETURN(size_t idx, def->AttrIndex(attr));
  return obj->attr_at(idx);
}

Result<Oid> DeltaTxn::Create(TypeId type, std::vector<Value> attrs) {
  // Eager validation, byte-identical to the head path's messages: commit
  // must not be able to fail on a delta that evaluated cleanly.
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema().GetType(type));
  if (attrs.size() != def->num_attrs()) {
    return Status::InvalidArgument(
        "type '" + def->name() + "' expects " +
        std::to_string(def->num_attrs()) + " attributes, got " +
        std::to_string(attrs.size()));
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    AQUA_RETURN_IF_ERROR(CheckAttrValue(def->attrs()[i], &attrs[i]));
  }
  Oid oid = MakeProvisionalOid(created_.size());
  created_.emplace_back(oid, type, std::move(attrs));
  return oid;
}

Status DeltaTxn::SetAttr(Oid oid, const std::string& attr, Value value) {
  AQUA_ASSIGN_OR_RETURN(const Object* obj, Get(oid));
  AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema().GetType(obj->type()));
  AQUA_ASSIGN_OR_RETURN(size_t idx, def->AttrIndex(attr));
  AQUA_RETURN_IF_ERROR(CheckAttrValue(def->attrs()[idx], &value));
  if (IsProvisionalOid(oid)) {
    // Txn-local object: write it directly, the delta carries the final
    // content.
    created_[ProvisionalOidIndex(oid)].set_attr_at(idx, std::move(value));
    return Status::OK();
  }
  auto patched = patched_.find(oid.value);
  if (patched == patched_.end()) {
    patched = patched_.emplace(oid.value, Object(*obj)).first;
  }
  patched->second.set_attr_at(idx, value);
  writes_.push_back(
      AttrWrite{oid, static_cast<uint32_t>(idx), std::move(value)});
  return Status::OK();
}

ItemDelta DeltaTxn::Take() {
  ItemDelta delta;
  delta.created.assign(std::make_move_iterator(created_.begin()),
                       std::make_move_iterator(created_.end()));
  delta.writes = std::move(writes_);
  created_.clear();
  writes_.clear();
  patched_.clear();
  return delta;
}

}  // namespace aqua
