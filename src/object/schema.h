#ifndef AQUA_OBJECT_SCHEMA_H_
#define AQUA_OBJECT_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace aqua {

/// Identifier of a registered object type within a `Schema`.
using TypeId = uint32_t;

inline constexpr TypeId kInvalidType = static_cast<TypeId>(-1);

/// Declaration of one attribute of an object type.
///
/// The `stored` flag mirrors §3.1 of the paper: alphabet-predicates may only
/// mention *stored* attributes (so they are evaluable in constant time); the
/// optimizer — not the user — verifies this against the schema.
struct AttrDef {
  std::string name;
  ValueType type = ValueType::kNull;
  bool stored = true;
};

/// Declaration of an object type: a name plus an ordered attribute list.
class TypeDef {
 public:
  TypeDef(std::string name, std::vector<AttrDef> attrs);

  const std::string& name() const { return name_; }
  const std::vector<AttrDef>& attrs() const { return attrs_; }
  size_t num_attrs() const { return attrs_.size(); }

  /// Returns the positional index of attribute `attr_name`, or NotFound.
  Result<size_t> AttrIndex(const std::string& attr_name) const;

  /// True when the type declares `attr_name`.
  bool HasAttr(const std::string& attr_name) const;

 private:
  std::string name_;
  std::vector<AttrDef> attrs_;
  std::unordered_map<std::string, size_t> index_;
};

/// The catalog of object types known to an `ObjectStore`.
class Schema {
 public:
  Schema() = default;
  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;

  /// Registers a new type; fails with AlreadyExists on a duplicate name.
  Result<TypeId> RegisterType(std::string name, std::vector<AttrDef> attrs);

  Result<TypeId> TypeIdOf(const std::string& name) const;
  Result<const TypeDef*> GetType(TypeId id) const;
  Result<const TypeDef*> GetType(const std::string& name) const;

  size_t num_types() const { return types_.size(); }

 private:
  std::vector<TypeDef> types_;
  std::unordered_map<std::string, TypeId> by_name_;
};

}  // namespace aqua

#endif  // AQUA_OBJECT_SCHEMA_H_
