#ifndef AQUA_OBJECT_OBJECT_STORE_H_
#define AQUA_OBJECT_OBJECT_STORE_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/value.h"
#include "object/object.h"
#include "object/schema.h"

namespace aqua {

/// An attribute assignment used when creating objects by name.
struct AttrValue {
  std::string name;
  Value value;
};

/// The in-memory object base: schema catalog, object heap, and per-type
/// extents.
///
/// Every list/tree cell in the bulk layer references objects stored here by
/// `Oid`; the pattern engine evaluates alphabet-predicates against these
/// objects.
class ObjectStore {
 public:
  ObjectStore() = default;
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  /// Creates an object with positional attribute values (must match the
  /// type's attribute count; values are type-checked, int widens to double).
  Result<Oid> Create(TypeId type, std::vector<Value> attrs);

  /// Creates an object giving values by attribute name; unspecified
  /// attributes are null.
  Result<Oid> Create(const std::string& type_name,
                     std::vector<AttrValue> attrs);

  Result<const Object*> Get(Oid oid) const;
  Result<Object*> GetMutable(Oid oid);

  /// True when `oid` names a live object.
  bool Contains(Oid oid) const;

  /// Reads one attribute by name.
  Result<Value> GetAttr(Oid oid, const std::string& attr) const;

  /// Writes one attribute by name (type-checked).
  Status SetAttr(Oid oid, const std::string& attr, Value value);

  /// All objects of the given type, in creation order.
  Result<const std::vector<Oid>*> Extent(TypeId type) const;
  Result<const std::vector<Oid>*> Extent(const std::string& type_name) const;

  size_t num_objects() const { return objects_.size(); }

 private:
  Status CheckAndCoerce(const AttrDef& def, Value* value) const;

  Schema schema_;
  std::vector<Object> objects_;                    // oid N is objects_[N-1]
  std::vector<std::vector<Oid>> extents_;          // indexed by TypeId
};

}  // namespace aqua

#endif  // AQUA_OBJECT_OBJECT_STORE_H_
