#ifndef AQUA_OBJECT_OBJECT_STORE_H_
#define AQUA_OBJECT_OBJECT_STORE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "object/object.h"
#include "object/schema.h"
#include "object/store_txn.h"
#include "object/store_version.h"
#include "object/store_view.h"

namespace aqua {

/// An attribute assignment used when creating objects by name.
struct AttrValue {
  std::string name;
  Value value;
};

/// Type-checks `*value` against `def` (int widens to double, null passes).
/// Shared by the head write path and `DeltaTxn`'s eager validation, so a
/// delta that validated cleanly cannot fail at commit time.
Status CheckAttrValue(const AttrDef& def, Value* value);

/// The in-memory object base: schema catalog, versioned object heap, and
/// per-type extents.
///
/// The heap is *versioned*: `Snapshot()` freezes the current state into an
/// immutable `StoreVersion` that readers hold through a `StoreView` and
/// traverse lock-free, while head mutations copy-on-write any chunk or
/// extent a live snapshot still references and stamp a new epoch. Versions
/// are reclaimed by refcount: dropping the last `StoreView` over an epoch
/// frees whatever chunks the head has since superseded.
///
/// Objects live in fixed-capacity chunks (store_version.h), so `Object*`
/// handles returned by `Get`/`GetMutable` stay valid while `Create` grows
/// the store — the historical single-vector heap invalidated them on
/// growth.
///
/// Thread contract: head mutators and `Snapshot` serialize on an internal
/// mutex; any number of threads may read concurrently through snapshots.
/// Direct head reads (`Get`/`GetAttr`/...) also take the mutex so a
/// concurrent reader/writer mix is race-free either way — hot paths should
/// read through a `StoreView`.
class ObjectStore {
 public:
  ObjectStore() = default;
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// The schema is setup-time state: register types before running
  /// concurrent queries (snapshots reference it by pointer).
  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  /// Creates an object with positional attribute values (must match the
  /// type's attribute count; values are type-checked, int widens to double).
  Result<Oid> Create(TypeId type, std::vector<Value> attrs)
      AQUA_EXCLUDES(mu_);

  /// Creates an object giving values by attribute name; unspecified
  /// attributes are null.
  Result<Oid> Create(const std::string& type_name, std::vector<AttrValue> attrs)
      AQUA_EXCLUDES(mu_);

  /// Resolves an oid in the head version. The pointer survives later
  /// `Create` calls; a later in-place write may copy-on-write the chunk, in
  /// which case the pointer keeps showing the pre-write state (like a
  /// snapshot would).
  Result<const Object*> Get(Oid oid) const AQUA_EXCLUDES(mu_);

  /// Mutable handle into the head version. The addressed chunk is
  /// un-shared first, so writes through the pointer never leak into a live
  /// snapshot. Single-writer contract: do not interleave with commits from
  /// other threads while holding the pointer.
  Result<Object*> GetMutable(Oid oid) AQUA_EXCLUDES(mu_);

  /// True when `oid` names a live object.
  bool Contains(Oid oid) const AQUA_EXCLUDES(mu_);

  /// Reads one attribute by name.
  Result<Value> GetAttr(Oid oid, const std::string& attr) const
      AQUA_EXCLUDES(mu_);

  /// Writes one attribute by name (type-checked).
  Status SetAttr(Oid oid, const std::string& attr, Value value)
      AQUA_EXCLUDES(mu_);

  /// All objects of the given type, in creation order. The extent is
  /// version-owned: holding the returned reference pins the oid list, and
  /// later `Create`s copy-on-write instead of growing it in place.
  Result<ExtentRef> Extent(TypeId type) const AQUA_EXCLUDES(mu_);
  Result<ExtentRef> Extent(const std::string& type_name) const
      AQUA_EXCLUDES(mu_);

  size_t num_objects() const AQUA_EXCLUDES(mu_);

  // ---------------------------------------------------------------------
  // Versioning

  /// Freezes the current head into an immutable version and returns a view
  /// over it. Repeated snapshots of an unchanged head share one
  /// `StoreVersion` (cached), so snapshotting per-query is cheap.
  StoreView Snapshot() const AQUA_EXCLUDES(mu_);

  /// Atomically applies per-item write deltas in item order, under a single
  /// epoch bump. Created objects receive final oids in fold order — exactly
  /// the oids a serial left-to-right evaluation would have allocated — and
  /// provisional refs inside attribute values are rewritten. Returns, per
  /// delta, the final oid of each provisional creation (index k holds the
  /// final oid of provisional oid k).
  Result<std::vector<std::vector<Oid>>> CommitBatch(
      std::vector<ItemDelta> deltas) AQUA_EXCLUDES(mu_);

  // ---------------------------------------------------------------------
  // Introspection (obs gauges, \snapshot shell command)

  /// Epoch of the head version; bumped on the first mutation after each
  /// snapshot, so one batch commit is one epoch.
  uint64_t epoch() const AQUA_EXCLUDES(mu_);
  /// Number of distinct `StoreVersion`s currently alive (head cache
  /// included).
  size_t versions_live() const AQUA_EXCLUDES(mu_);
  /// Total chunks/extents cloned because a live snapshot pinned them.
  uint64_t cow_copies() const AQUA_EXCLUDES(mu_);
  /// Number of `StoreView`s (and other version handles) held outside the
  /// store across all live versions.
  size_t snapshot_pins() const AQUA_EXCLUDES(mu_);
  /// Approximate bytes of superseded data kept alive only because a live
  /// snapshot still references it.
  size_t retained_bytes() const AQUA_EXCLUDES(mu_);

 private:
  // Pre-mutation hook: stamps a new epoch if the current one has been
  // handed out, and drops the cached head version so its pins lapse.
  void BeginMutation() AQUA_REQUIRES(mu_);

  // Chunk holding `index` (0-based), un-shared for writing (clones the
  // chunk first when a snapshot still references it).
  StoreChunk* WritableChunk(size_t index) AQUA_REQUIRES(mu_);

  Result<Oid> CreateLocked(TypeId type, std::vector<Value> attrs)
      AQUA_REQUIRES(mu_);
  // Append path shared by Create and CommitBatch: attrs already validated.
  Oid AppendValidated(TypeId type, std::vector<Value> attrs)
      AQUA_REQUIRES(mu_);
  Status SetAttrLocked(Oid oid, size_t attr_index, Value value)
      AQUA_REQUIRES(mu_);
  Result<const Object*> GetLocked(Oid oid) const AQUA_REQUIRES(mu_);
  std::shared_ptr<const StoreVersion> SnapshotLocked() const
      AQUA_REQUIRES(mu_);
  void PruneRetainedLocked() const AQUA_REQUIRES(mu_);

  Schema schema_;

  mutable Mutex mu_;
  uint64_t epoch_ AQUA_GUARDED_BY(mu_) = 1;
  uint64_t num_objects_ AQUA_GUARDED_BY(mu_) = 0;
  std::vector<std::shared_ptr<StoreChunk>> chunks_ AQUA_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<std::vector<Oid>>> extents_
      AQUA_GUARDED_BY(mu_);  // indexed by TypeId
  uint64_t cow_copies_ AQUA_GUARDED_BY(mu_) = 0;
  // Cached version of the unchanged head; also what keeps "the snapshot
  // you just took" alive between queries.
  mutable std::shared_ptr<const StoreVersion> head_version_
      AQUA_GUARDED_BY(mu_);
  // Every version ever handed out, weakly: reclamation is automatic (the
  // last StoreView drop frees the version), this list only observes it.
  mutable std::vector<std::weak_ptr<const StoreVersion>> retained_
      AQUA_GUARDED_BY(mu_);
};

}  // namespace aqua

#endif  // AQUA_OBJECT_OBJECT_STORE_H_
