#include "object/object.h"

// Object is header-only at present; this file anchors the translation unit.
