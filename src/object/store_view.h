#ifndef AQUA_OBJECT_STORE_VIEW_H_
#define AQUA_OBJECT_STORE_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/value.h"
#include "object/store_version.h"

namespace aqua {

class ObjectStore;

/// A snapshot handle over one immutable `StoreVersion` — the read surface
/// threaded through the bulk/pattern/index/exec layers so a query evaluates
/// lock-free against the epoch it opened, regardless of concurrent commits.
///
/// Copying a view is one shared_ptr copy; the copy pins the same version.
/// The conversion from `const ObjectStore&` is deliberately implicit: every
/// read API that used to take the store now takes a view, and existing call
/// sites keep compiling by snapshotting at the boundary (cheap — the store
/// caches the head version, so an unchanged store hands out the same
/// `StoreVersion` again).
class StoreView {
 public:
  /// An empty view: no version, every lookup fails. Used as the
  /// default-constructed state before an executor installs a snapshot.
  StoreView() = default;

  // NOLINTNEXTLINE(google-explicit-constructor): snapshotting conversion.
  StoreView(const ObjectStore& store);
  explicit StoreView(std::shared_ptr<const StoreVersion> version)
      : version_(std::move(version)) {}

  bool valid() const { return version_ != nullptr; }
  uint64_t epoch() const { return version_ != nullptr ? version_->epoch : 0; }
  size_t num_objects() const {
    return version_ != nullptr ? version_->num_objects : 0;
  }

  const Schema& schema() const { return *version_->schema; }

  /// Resolves an oid against this version. The pointer is stable for the
  /// view's lifetime: chunks referenced by a version are immutable.
  Result<const Object*> Get(Oid oid) const;

  /// True when `oid` names an object that existed at this epoch.
  bool Contains(Oid oid) const {
    return version_ != nullptr && !oid.IsNull() &&
           oid.value <= version_->num_objects;
  }

  /// Reads one attribute by name, as of this epoch.
  Result<Value> GetAttr(Oid oid, const std::string& attr) const;

  /// All objects of the given type at this epoch, in creation order. The
  /// returned extent is version-owned: holding it keeps the oid list alive
  /// and stable even across later commits.
  Result<ExtentRef> Extent(TypeId type) const;
  Result<ExtentRef> Extent(const std::string& type_name) const;

  const std::shared_ptr<const StoreVersion>& version() const {
    return version_;
  }

 private:
  std::shared_ptr<const StoreVersion> version_;
};

}  // namespace aqua

#endif  // AQUA_OBJECT_STORE_VIEW_H_
