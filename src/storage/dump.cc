#include "storage/dump.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace aqua {

namespace {

// ---------------------------------------------------------------------------
// Encoding

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "N";
    case ValueType::kBool:
      return v.bool_value() ? "B:true" : "B:false";
    case ValueType::kInt:
      return "I:" + std::to_string(v.int_value());
    case ValueType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << "D:" << v.double_value();
      return os.str();
    }
    case ValueType::kString:
      return "S:\"" + EscapeString(v.string_value()) + "\"";
    case ValueType::kRef:
      return "R:" + std::to_string(v.ref_value().value);
  }
  return "N";
}

const char* TypeName(ValueType t) {
  switch (t) {
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kRef:
      return "ref";
    case ValueType::kNull:
      return "null";
  }
  return "null";
}

Result<ValueType> TypeFromName(std::string_view name) {
  if (name == "bool") return ValueType::kBool;
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  if (name == "ref") return ValueType::kRef;
  if (name == "null") return ValueType::kNull;
  return Status::ParseError("unknown attribute type '" + std::string(name) +
                            "'");
}

void EncodeTreeNode(const Tree& tree, NodeId v, std::string* out) {
  const NodePayload& p = tree.payload(v);
  if (p.is_cell()) {
    *out += "C:" + std::to_string(p.oid().value);
  } else {
    *out += "P:" + p.label();
  }
  const auto& kids = tree.children(v);
  if (!kids.empty()) {
    *out += "(";
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i > 0) *out += " ";
      EncodeTreeNode(tree, kids[i], out);
    }
    *out += ")";
  }
}

// ---------------------------------------------------------------------------
// Decoding

class DumpParser {
 public:
  DumpParser(std::string_view text, Database* db) : text_(text), db_(db) {}

  Status Run() {
    AQUA_ASSIGN_OR_RETURN(std::string header, NextLine());
    if (header != "AQUA-DUMP 1") {
      return Status::ParseError("bad dump header: '" + header + "'");
    }
    while (true) {
      AQUA_ASSIGN_OR_RETURN(std::string line, NextLine());
      if (line == "END") return Status::OK();
      if (StartsWith(line, "TYPE ")) {
        AQUA_RETURN_IF_ERROR(ParseType(line.substr(5)));
      } else if (StartsWith(line, "OBJ ")) {
        AQUA_RETURN_IF_ERROR(ParseObject(line.substr(4)));
      } else if (StartsWith(line, "TREE ")) {
        AQUA_RETURN_IF_ERROR(ParseTreeLine(line.substr(5)));
      } else if (StartsWith(line, "LIST ")) {
        AQUA_RETURN_IF_ERROR(ParseListLine(line.substr(5)));
      } else if (StartsWith(line, "INDEX ")) {
        AQUA_RETURN_IF_ERROR(ParseIndexLine(line.substr(6)));
      } else if (!line.empty()) {
        return Status::ParseError("unrecognized dump line: '" + line + "'");
      }
    }
  }

 private:
  Result<std::string> NextLine() {
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of dump (no END line)");
    }
    size_t nl = text_.find('\n', pos_);
    if (nl == std::string_view::npos) nl = text_.size();
    std::string line(text_.substr(pos_, nl - pos_));
    pos_ = nl + 1;
    return line;
  }

  Status ParseType(std::string_view rest) {
    std::vector<std::string> tokens = Split(std::string(rest), ' ');
    if (tokens.empty() || tokens[0].empty()) {
      return Status::ParseError("TYPE line missing a name");
    }
    std::vector<AttrDef> attrs;
    for (size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i].empty()) continue;
      std::vector<std::string> parts = Split(tokens[i], ':');
      if (parts.size() != 3) {
        return Status::ParseError("bad attribute spec '" + tokens[i] + "'");
      }
      AQUA_ASSIGN_OR_RETURN(ValueType vt, TypeFromName(parts[1]));
      attrs.push_back(AttrDef{parts[0], vt, parts[2] == "s"});
    }
    return db_->store().schema().RegisterType(tokens[0], attrs).status();
  }

  Status ParseObject(std::string_view rest) {
    // <oid> <type> <values...>
    size_t sp1 = rest.find(' ');
    if (sp1 == std::string_view::npos) {
      return Status::ParseError("OBJ line missing fields");
    }
    uint64_t oid = std::strtoull(std::string(rest.substr(0, sp1)).c_str(),
                                 nullptr, 10);
    size_t sp2 = rest.find(' ', sp1 + 1);
    std::string type_name(rest.substr(
        sp1 + 1, sp2 == std::string_view::npos ? rest.size() - sp1 - 1
                                               : sp2 - sp1 - 1));
    std::vector<Value> values;
    if (sp2 != std::string_view::npos) {
      std::string_view tail = rest.substr(sp2 + 1);
      size_t p = 0;
      while (p < tail.size()) {
        AQUA_ASSIGN_OR_RETURN(Value v, DecodeValue(tail, &p));
        values.push_back(std::move(v));
        while (p < tail.size() && tail[p] == ' ') ++p;
      }
    }
    AQUA_ASSIGN_OR_RETURN(TypeId type,
                          db_->store().schema().TypeIdOf(type_name));
    AQUA_ASSIGN_OR_RETURN(Oid assigned,
                          db_->store().Create(type, std::move(values)));
    if (assigned.value != oid) {
      return Status::ParseError(
          "object ids are not dense/ordered in the dump: expected " +
          std::to_string(assigned.value) + ", got " + std::to_string(oid));
    }
    return Status::OK();
  }

  Result<Value> DecodeValue(std::string_view s, size_t* p) {
    if (*p >= s.size()) return Status::ParseError("truncated value");
    char tag = s[*p];
    if (tag == 'N') {
      *p += 1;
      return Value::Null();
    }
    if (*p + 1 >= s.size() || s[*p + 1] != ':') {
      return Status::ParseError("malformed value tag");
    }
    size_t body = *p + 2;
    switch (tag) {
      case 'B': {
        if (s.substr(body, 4) == "true") {
          *p = body + 4;
          return Value::Bool(true);
        }
        if (s.substr(body, 5) == "false") {
          *p = body + 5;
          return Value::Bool(false);
        }
        return Status::ParseError("malformed bool value");
      }
      case 'I':
      case 'D':
      case 'R': {
        size_t end = body;
        while (end < s.size() && s[end] != ' ') ++end;
        std::string num(s.substr(body, end - body));
        *p = end;
        if (tag == 'I') {
          return Value::Int(std::strtoll(num.c_str(), nullptr, 10));
        }
        if (tag == 'D') {
          return Value::Double(std::strtod(num.c_str(), nullptr));
        }
        return Value::Ref(Oid(std::strtoull(num.c_str(), nullptr, 10)));
      }
      case 'S': {
        if (body >= s.size() || s[body] != '"') {
          return Status::ParseError("malformed string value");
        }
        std::string out;
        size_t i = body + 1;
        while (i < s.size() && s[i] != '"') {
          if (s[i] == '\\' && i + 1 < s.size()) {
            char next = s[i + 1];
            out += next == 'n' ? '\n' : next;
            i += 2;
          } else {
            out += s[i++];
          }
        }
        if (i >= s.size()) return Status::ParseError("unterminated string");
        *p = i + 1;
        return Value::String(std::move(out));
      }
      default:
        return Status::ParseError(std::string("unknown value tag '") + tag +
                                  "'");
    }
  }

  Result<NodePayload> DecodePayload(std::string_view s, size_t* p) {
    if (*p + 1 >= s.size() || s[*p + 1] != ':') {
      return Status::ParseError("malformed node payload");
    }
    char tag = s[*p];
    size_t body = *p + 2;
    size_t end = body;
    while (end < s.size() && s[end] != ' ' && s[end] != '(' && s[end] != ')') {
      ++end;
    }
    std::string token(s.substr(body, end - body));
    *p = end;
    if (tag == 'C') {
      Oid oid(std::strtoull(token.c_str(), nullptr, 10));
      if (!db_->store().Contains(oid)) {
        return Status::ParseError("tree references unknown object " + token);
      }
      return NodePayload::Cell(oid);
    }
    if (tag == 'P') return NodePayload::ConcatPoint(token);
    return Status::ParseError(std::string("unknown payload tag '") + tag +
                              "'");
  }

  Result<Tree> DecodeTree(std::string_view s, size_t* p) {
    AQUA_ASSIGN_OR_RETURN(NodePayload payload, DecodePayload(s, p));
    std::vector<Tree> children;
    if (*p < s.size() && s[*p] == '(') {
      ++*p;
      while (*p < s.size() && s[*p] != ')') {
        while (*p < s.size() && s[*p] == ' ') ++*p;
        if (*p < s.size() && s[*p] == ')') break;
        AQUA_ASSIGN_OR_RETURN(Tree child, DecodeTree(s, p));
        children.push_back(std::move(child));
      }
      if (*p >= s.size()) return Status::ParseError("unterminated subtree");
      ++*p;  // ')'
    }
    return Tree::Node(std::move(payload), children);
  }

  Status ParseTreeLine(std::string_view rest) {
    size_t sp = rest.find(' ');
    if (sp == std::string_view::npos) {
      return Status::ParseError("TREE line missing body");
    }
    std::string name(rest.substr(0, sp));
    std::string_view body = rest.substr(sp + 1);
    if (body == "nil") return db_->RegisterTree(name, Tree());
    size_t p = 0;
    AQUA_ASSIGN_OR_RETURN(Tree tree, DecodeTree(body, &p));
    if (p != body.size()) {
      return Status::ParseError("trailing content in TREE line");
    }
    return db_->RegisterTree(name, std::move(tree));
  }

  Status ParseListLine(std::string_view rest) {
    size_t sp = rest.find(' ');
    if (sp == std::string_view::npos) {
      return Status::ParseError("LIST line missing body");
    }
    std::string name(rest.substr(0, sp));
    std::string_view body = rest.substr(sp + 1);
    if (body.empty() || body.front() != '[' || body.back() != ']') {
      return Status::ParseError("LIST body must be bracketed");
    }
    List list;
    std::string_view inner = body.substr(1, body.size() - 2);
    size_t p = 0;
    while (p < inner.size()) {
      while (p < inner.size() && inner[p] == ' ') ++p;
      if (p >= inner.size()) break;
      AQUA_ASSIGN_OR_RETURN(NodePayload payload, DecodePayload(inner, &p));
      list.Append(std::move(payload));
    }
    return db_->RegisterList(name, std::move(list));
  }

  Status ParseIndexLine(std::string_view rest) {
    std::vector<std::string> parts = Split(std::string(rest), ' ');
    if (parts.size() != 2) {
      return Status::ParseError("INDEX line needs <collection> <attr>");
    }
    return db_->CreateIndex(parts[0], parts[1]);
  }

  std::string_view text_;
  Database* db_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::string> DumpDatabase(const Database& db) {
  std::string out = "AQUA-DUMP 1\n";
  const Schema& schema = db.store().schema();
  for (TypeId id = 0; id < schema.num_types(); ++id) {
    AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema.GetType(id));
    out += "TYPE " + def->name();
    for (const AttrDef& attr : def->attrs()) {
      out += " " + attr.name + ":" + TypeName(attr.type) + ":" +
             (attr.stored ? "s" : "c");
    }
    out += "\n";
  }
  for (uint64_t raw = 1; raw <= db.store().num_objects(); ++raw) {
    AQUA_ASSIGN_OR_RETURN(const Object* obj, db.store().Get(Oid(raw)));
    AQUA_ASSIGN_OR_RETURN(const TypeDef* def, schema.GetType(obj->type()));
    out += "OBJ " + std::to_string(raw) + " " + def->name();
    for (const Value& v : obj->attrs()) out += " " + EncodeValue(v);
    out += "\n";
  }
  for (const std::string& name : db.TreeNames()) {
    AQUA_ASSIGN_OR_RETURN(const Tree* tree, db.GetTree(name));
    out += "TREE " + name + " ";
    if (tree->empty()) {
      out += "nil";
    } else {
      EncodeTreeNode(*tree, tree->root(), &out);
    }
    out += "\n";
  }
  for (const std::string& name : db.ListNames()) {
    AQUA_ASSIGN_OR_RETURN(const List* list, db.GetList(name));
    out += "LIST " + name + " [";
    for (size_t i = 0; i < list->size(); ++i) {
      if (i > 0) out += " ";
      const NodePayload& p = list->at(i);
      if (p.is_cell()) {
        out += "C:" + std::to_string(p.oid().value);
      } else {
        out += "P:" + p.label();
      }
    }
    out += "]\n";
  }
  for (const auto& [collection, attr] : db.indexes().AllIndexes()) {
    out += "INDEX " + collection + " " + attr + "\n";
  }
  out += "END\n";
  return out;
}

Status DumpDatabaseToFile(const Database& db, const std::string& path) {
  AQUA_ASSIGN_OR_RETURN(std::string text, DumpDatabase(db));
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::Internal("cannot open '" + path + "' for write");
  file << text;
  if (!file.good()) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Status LoadDatabase(std::string_view text, Database* out) {
  if (out == nullptr) return Status::InvalidArgument("null output database");
  if (out->store().num_objects() != 0 ||
      out->store().schema().num_types() != 0 ||
      !out->CollectionNames().empty()) {
    return Status::InvalidArgument("LoadDatabase needs an empty database");
  }
  return DumpParser(text, out).Run();
}

Status LoadDatabaseFromFile(const std::string& path, Database* out) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return LoadDatabase(buffer.str(), out);
}

}  // namespace aqua
