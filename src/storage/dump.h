#ifndef AQUA_STORAGE_DUMP_H_
#define AQUA_STORAGE_DUMP_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "query/database.h"

namespace aqua {

/// Serializes a whole database (schema, objects, collections, index
/// catalog) to a line-oriented text format:
///
///   AQUA-DUMP 1
///   TYPE Person name:string:s citizen:string:s age:int:s
///   OBJ 1 Person S:"Ted" S:"USA" I:82
///   TREE family C:1(C:2 C:3(C:5 C:6) P:here C:4)
///   LIST song [C:7 C:8 P:x]
///   INDEX family citizen
///   END
///
/// Values encode as N (null), B:true/false, I:<int>, D:<double>,
/// S:"<escaped>", R:<oid>. Object ids are dense and dumped in creation
/// order, so a load reproduces identical identities; indexes are rebuilt
/// rather than stored.
Result<std::string> DumpDatabase(const Database& db);

/// Writes `DumpDatabase(db)` to `path`.
Status DumpDatabaseToFile(const Database& db, const std::string& path);

/// Reconstructs a database from dump text into `out`, which must be empty
/// (no types, objects, or collections).
Status LoadDatabase(std::string_view text, Database* out);

/// Reads `path` and calls `LoadDatabase`.
Status LoadDatabaseFromFile(const std::string& path, Database* out);

}  // namespace aqua

#endif  // AQUA_STORAGE_DUMP_H_
