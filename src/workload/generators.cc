#include "workload/generators.h"

#include <map>
#include <memory>
#include <random>

namespace aqua {

namespace {

Status RegisterTypeOnce(ObjectStore& store, const std::string& name,
                        std::vector<AttrDef> attrs) {
  if (store.schema().TypeIdOf(name).ok()) return Status::OK();
  return store.schema().RegisterType(name, std::move(attrs)).status();
}

}  // namespace

Status RegisterPersonType(ObjectStore& store) {
  return RegisterTypeOnce(store, "Person",
                          {{"name", ValueType::kString, true},
                           {"citizen", ValueType::kString, true},
                           {"eyes", ValueType::kString, true},
                           {"education", ValueType::kString, true},
                           {"age", ValueType::kInt, true}});
}

Status RegisterNoteType(ObjectStore& store) {
  return RegisterTypeOnce(store, "Note",
                          {{"pitch", ValueType::kString, true},
                           {"duration", ValueType::kInt, true}});
}

Status RegisterParseNodeType(ObjectStore& store) {
  // `op` is the paper's OpName method, modelled as a stored attribute
  // (§3.1 restricts predicates to stored attributes).
  return RegisterTypeOnce(store, "ParseNode",
                          {{"op", ValueType::kString, true}});
}

Status RegisterItemType(ObjectStore& store) {
  return RegisterTypeOnce(store, "Item",
                          {{"name", ValueType::kString, true},
                           {"val", ValueType::kInt, true}});
}

namespace {

Result<Oid> MakePerson(ObjectStore& store, const std::string& name,
                       const std::string& citizen, const std::string& eyes,
                       const std::string& education, int64_t age) {
  return store.Create("Person", {{"name", Value::String(name)},
                                 {"citizen", Value::String(citizen)},
                                 {"eyes", Value::String(eyes)},
                                 {"education", Value::String(education)},
                                 {"age", Value::Int(age)}});
}

}  // namespace

Result<Tree> MakePaperFamilyTree(ObjectStore& store) {
  AQUA_RETURN_IF_ERROR(RegisterPersonType(store));
  // Root Ted (USA); his children Ann (USA), Gen (Brazil), Ray (USA).
  // Gen's children: Joe (Brazil, child Bob) and John (USA, child Mary).
  // `Brazil(!?* USA !?*)` therefore matches exactly once, at Gen.
  AQUA_ASSIGN_OR_RETURN(Oid ted,
                        MakePerson(store, "Ted", "USA", "blue", "PhD", 82));
  AQUA_ASSIGN_OR_RETURN(Oid ann,
                        MakePerson(store, "Ann", "USA", "green", "BA", 57));
  AQUA_ASSIGN_OR_RETURN(
      Oid gen, MakePerson(store, "Gen", "Brazil", "brown", "MS", 55));
  AQUA_ASSIGN_OR_RETURN(Oid ray,
                        MakePerson(store, "Ray", "USA", "blue", "HS", 51));
  AQUA_ASSIGN_OR_RETURN(
      Oid joe, MakePerson(store, "Joe", "Brazil", "brown", "BA", 30));
  AQUA_ASSIGN_OR_RETURN(Oid john,
                        MakePerson(store, "John", "USA", "hazel", "MD", 28));
  AQUA_ASSIGN_OR_RETURN(
      Oid bob, MakePerson(store, "Bob", "Brazil", "brown", "HS", 7));
  AQUA_ASSIGN_OR_RETURN(Oid mary,
                        MakePerson(store, "Mary", "USA", "blue", "BS", 5));

  Tree t = Tree::Node(
      NodePayload::Cell(ted),
      {Tree::Leaf(NodePayload::Cell(ann)),
       Tree::Node(NodePayload::Cell(gen),
                  {Tree::Node(NodePayload::Cell(joe),
                              {Tree::Leaf(NodePayload::Cell(bob))}),
                   Tree::Node(NodePayload::Cell(john),
                              {Tree::Leaf(NodePayload::Cell(mary))})}),
       Tree::Leaf(NodePayload::Cell(ray))});
  return t;
}

Result<Tree> MakeFamilyTree(ObjectStore& store, const FamilyTreeSpec& spec) {
  AQUA_RETURN_IF_ERROR(RegisterPersonType(store));
  if (spec.num_people == 0) return Tree();
  std::mt19937_64 rng(spec.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const char* kEyes[] = {"blue", "green", "brown", "hazel"};
  const char* kEdu[] = {"HS", "BA", "BS", "MS", "MD", "PhD"};
  const char* kOther[] = {"France", "Japan", "India", "Kenya"};

  auto make_person = [&](size_t i) -> Result<Oid> {
    std::string citizen;
    double c = coin(rng);
    if (c < spec.brazil_fraction) {
      citizen = "Brazil";
    } else if (c < spec.brazil_fraction + 0.7) {
      citizen = "USA";
    } else {
      citizen = kOther[rng() % 4];
    }
    return MakePerson(store, "P" + std::to_string(i), citizen,
                      kEyes[rng() % 4], kEdu[rng() % 6],
                      static_cast<int64_t>(rng() % 90 + 5));
  };

  Tree t;
  AQUA_ASSIGN_OR_RETURN(Oid root_oid, make_person(0));
  NodeId root = t.AddNode(NodePayload::Cell(root_oid));
  AQUA_RETURN_IF_ERROR(t.SetRoot(root));
  std::vector<NodeId> open = {root};
  for (size_t i = 1; i < spec.num_people; ++i) {
    AQUA_ASSIGN_OR_RETURN(Oid oid, make_person(i));
    NodeId node = t.AddNode(NodePayload::Cell(oid));
    NodeId parent = open[rng() % open.size()];
    AQUA_RETURN_IF_ERROR(t.AddChild(parent, node));
    if (t.arity(parent) >= spec.max_children) {
      for (size_t j = 0; j < open.size(); ++j) {
        if (open[j] == parent) {
          open.erase(open.begin() + j);
          break;
        }
      }
    }
    open.push_back(node);
  }
  return t;
}

Result<List> MakeSong(ObjectStore& store, const SongSpec& spec) {
  AQUA_RETURN_IF_ERROR(RegisterNoteType(store));
  std::mt19937_64 rng(spec.seed);
  List song;
  for (size_t i = 0; i < spec.num_notes; ++i) {
    const std::string& pitch = spec.pitches[rng() % spec.pitches.size()];
    AQUA_ASSIGN_OR_RETURN(
        Oid note,
        store.Create("Note",
                     {{"pitch", Value::String(pitch)},
                      {"duration", Value::Int(static_cast<int64_t>(
                                       rng() % spec.max_duration + 1))}}));
    song.Append(NodePayload::Cell(note));
  }
  return song;
}

namespace {

class ParseTreeGen {
 public:
  ParseTreeGen(ObjectStore& store, const ParseTreeSpec& spec)
      : store_(store), spec_(spec), rng_(spec.seed) {}

  Result<Tree> Generate() {
    AQUA_ASSIGN_OR_RETURN(Tree t, Expr(spec_.num_exprs));
    return t;
  }

 private:
  Result<Oid> Node(const std::string& op) {
    return store_.Create("ParseNode", {{"op", Value::String(op)}});
  }

  Result<Tree> Expr(size_t budget) {
    if (budget <= 1) {
      AQUA_ASSIGN_OR_RETURN(Oid scan, Node("scan"));
      return Tree::Leaf(NodePayload::Cell(scan));
    }
    double c = std::uniform_real_distribution<double>(0, 1)(rng_);
    if (c < 0.5) {
      // select(input, predicate)
      AQUA_ASSIGN_OR_RETURN(Oid sel, Node("select"));
      AQUA_ASSIGN_OR_RETURN(Tree input, Expr(budget - 1));
      AQUA_ASSIGN_OR_RETURN(Tree pred, Pred(2));
      return Tree::Node(NodePayload::Cell(sel), {input, pred});
    }
    // join(left, right) or union(left, right)
    AQUA_ASSIGN_OR_RETURN(Oid op, Node(c < 0.8 ? "join" : "union"));
    size_t left_budget = 1 + rng_() % std::max<size_t>(budget - 1, 1);
    AQUA_ASSIGN_OR_RETURN(Tree left, Expr(left_budget));
    AQUA_ASSIGN_OR_RETURN(Tree right,
                          Expr(budget > left_budget ? budget - left_budget - 1
                                                    : 1));
    return Tree::Node(NodePayload::Cell(op), {left, right});
  }

  Result<Tree> Pred(size_t depth) {
    double c = std::uniform_real_distribution<double>(0, 1)(rng_);
    if (depth == 0 || c >= spec_.and_fraction + 0.2) {
      AQUA_ASSIGN_OR_RETURN(Oid cmp, Node("cmp"));
      return Tree::Leaf(NodePayload::Cell(cmp));
    }
    AQUA_ASSIGN_OR_RETURN(Oid op,
                          Node(c < spec_.and_fraction ? "and" : "or"));
    AQUA_ASSIGN_OR_RETURN(Tree left, Pred(depth - 1));
    AQUA_ASSIGN_OR_RETURN(Tree right, Pred(depth - 1));
    return Tree::Node(NodePayload::Cell(op), {left, right});
  }

  ObjectStore& store_;
  const ParseTreeSpec& spec_;
  std::mt19937_64 rng_;
};

}  // namespace

Result<Tree> MakeQueryParseTree(ObjectStore& store,
                                const ParseTreeSpec& spec) {
  AQUA_RETURN_IF_ERROR(RegisterParseNodeType(store));
  return ParseTreeGen(store, spec).Generate();
}

Result<Tree> MakeRandomTree(ObjectStore& store, const RandomTreeSpec& spec) {
  AQUA_RETURN_IF_ERROR(RegisterItemType(store));
  if (spec.num_nodes == 0) return Tree();
  std::mt19937_64 rng(spec.seed);
  auto make_item = [&]() -> Result<Oid> {
    const std::string& label = spec.labels[rng() % spec.labels.size()];
    return store.Create(
        "Item", {{"name", Value::String(label)},
                 {"val", Value::Int(static_cast<int64_t>(
                             rng() % std::max(spec.val_range, 1)))}});
  };
  Tree t;
  AQUA_ASSIGN_OR_RETURN(Oid root_oid, make_item());
  NodeId root = t.AddNode(NodePayload::Cell(root_oid));
  AQUA_RETURN_IF_ERROR(t.SetRoot(root));
  std::vector<NodeId> open = {root};
  for (size_t i = 1; i < spec.num_nodes; ++i) {
    AQUA_ASSIGN_OR_RETURN(Oid oid, make_item());
    NodeId node = t.AddNode(NodePayload::Cell(oid));
    NodeId parent = open[rng() % open.size()];
    AQUA_RETURN_IF_ERROR(t.AddChild(parent, node));
    if (t.arity(parent) >= spec.max_children) {
      for (size_t j = 0; j < open.size(); ++j) {
        if (open[j] == parent) {
          open.erase(open.begin() + j);
          break;
        }
      }
    }
    open.push_back(node);
  }
  return t;
}

Result<List> MakeRandomList(ObjectStore& store, size_t num_items,
                            const std::vector<std::string>& labels,
                            uint64_t seed) {
  AQUA_RETURN_IF_ERROR(RegisterItemType(store));
  std::mt19937_64 rng(seed);
  List out;
  for (size_t i = 0; i < num_items; ++i) {
    AQUA_ASSIGN_OR_RETURN(
        Oid oid,
        store.Create("Item",
                     {{"name", Value::String(labels[rng() % labels.size()])},
                      {"val", Value::Int(static_cast<int64_t>(rng() % 100))}}));
    out.Append(NodePayload::Cell(oid));
  }
  return out;
}

Result<Tree> MakeChain(ObjectStore& store,
                       const std::vector<std::string>& labels, size_t length) {
  AQUA_RETURN_IF_ERROR(RegisterItemType(store));
  if (length == 0 || labels.empty()) return Tree();
  Tree t;
  NodeId prev = kInvalidNode;
  for (size_t i = 0; i < length; ++i) {
    AQUA_ASSIGN_OR_RETURN(
        Oid oid,
        store.Create("Item", {{"name", Value::String(labels[i % labels.size()])},
                              {"val", Value::Int(static_cast<int64_t>(i))}}));
    NodeId node = t.AddNode(NodePayload::Cell(oid));
    if (prev == kInvalidNode) {
      AQUA_RETURN_IF_ERROR(t.SetRoot(node));
    } else {
      AQUA_RETURN_IF_ERROR(t.AddChild(prev, node));
    }
    prev = node;
  }
  return t;
}

AtomFn MakeInterningAtomFn(ObjectStore* store, std::string type_name,
                           std::string attr) {
  auto cache = std::make_shared<std::map<std::string, Oid>>();
  return [store, type_name = std::move(type_name), attr = std::move(attr),
          cache](const std::string& token) -> Result<Oid> {
    auto it = cache->find(token);
    if (it != cache->end()) return it->second;
    AQUA_ASSIGN_OR_RETURN(
        Oid oid, store->Create(type_name, {{attr, Value::String(token)}}));
    cache->emplace(token, oid);
    return oid;
  };
}

}  // namespace aqua
