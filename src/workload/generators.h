#ifndef AQUA_WORKLOAD_GENERATORS_H_
#define AQUA_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "object/object_store.h"
#include "bulk/list.h"
#include "bulk/notation.h"
#include "bulk/tree.h"

namespace aqua {

// Synthetic workloads mirroring the paper's running examples (§4 family
// trees, §5 query parse trees, §6 music lists). The paper has no datasets;
// these deterministic generators exercise the same code paths at
// configurable scale. All randomness is seeded (mt19937_64), so every test,
// example, and benchmark is reproducible.

/// Registers the `Person` type (name, citizen, eyes, education, age) used by
/// the family-tree examples; idempotent.
Status RegisterPersonType(ObjectStore& store);

/// Registers the `Note` type (pitch, duration); idempotent.
Status RegisterNoteType(ObjectStore& store);

/// Registers the `ParseNode` type (op); idempotent.
Status RegisterParseNodeType(ObjectStore& store);

/// Registers the generic `Item` type (name, val); idempotent.
Status RegisterItemType(ObjectStore& store);

/// The exact family tree of Figure 3/4: a tree in which the pattern
/// `Brazil(!?* USA !?*)` has exactly one match (root Ted; Gen is the
/// Brazilian parent with American child John).
Result<Tree> MakePaperFamilyTree(ObjectStore& store);

/// Spec for random genealogies.
struct FamilyTreeSpec {
  size_t num_people = 100;
  size_t max_children = 3;
  /// Fraction of Brazilian citizens; the rest are mostly USA with a few
  /// other countries.
  double brazil_fraction = 0.1;
  uint64_t seed = 42;
};
Result<Tree> MakeFamilyTree(ObjectStore& store, const FamilyTreeSpec& spec);

/// Spec for random songs (lists of notes).
struct SongSpec {
  size_t num_notes = 200;
  std::vector<std::string> pitches = {"A", "B", "C", "D", "E", "F", "G"};
  int max_duration = 8;
  uint64_t seed = 42;
};
Result<List> MakeSong(ObjectStore& store, const SongSpec& spec);

/// Spec for random algebra parse trees (§5): expression nodes `select`,
/// `join`, `union`, `scan`, with predicate subtrees `and` / `or` / `cmp`.
struct ParseTreeSpec {
  /// Number of expression-level nodes to aim for.
  size_t num_exprs = 50;
  /// Probability that a select's predicate root is a conjunction — each such
  /// select is a target for the §5 rewrite.
  double and_fraction = 0.5;
  uint64_t seed = 42;
};
Result<Tree> MakeQueryParseTree(ObjectStore& store, const ParseTreeSpec& spec);

/// Spec for random generic trees (pattern-matching benchmarks).
struct RandomTreeSpec {
  size_t num_nodes = 1000;
  size_t max_children = 4;
  /// Labels drawn uniformly for each node's `name`.
  std::vector<std::string> labels = {"a", "b", "c", "d", "e"};
  /// `val` attribute range [0, val_range).
  int val_range = 100;
  uint64_t seed = 42;
};
Result<Tree> MakeRandomTree(ObjectStore& store, const RandomTreeSpec& spec);

/// A random flat list of `Item`s with the same label/val scheme.
Result<List> MakeRandomList(ObjectStore& store, size_t num_items,
                            const std::vector<std::string>& labels,
                            uint64_t seed);

/// A chain (list-like tree) of `Item`s whose names cycle through `labels` —
/// the pathological depth workload for closure matching.
Result<Tree> MakeChain(ObjectStore& store,
                       const std::vector<std::string>& labels, size_t length);

/// An `AtomFn` for the notation parsers that creates one `type_name` object
/// per distinct token (interning by token) with `attr` set to the token.
/// The returned function owns its cache and retains `store`.
AtomFn MakeInterningAtomFn(ObjectStore* store, std::string type_name,
                           std::string attr);

}  // namespace aqua

#endif  // AQUA_WORKLOAD_GENERATORS_H_
