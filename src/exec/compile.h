#ifndef AQUA_EXEC_COMPILE_H_
#define AQUA_EXEC_COMPILE_H_

#include <memory>
#include <vector>

#include "exec/physical_op.h"
#include "query/plan.h"

namespace aqua::exec {

/// Compiles a logical plan into a tree of physical operators.
///
/// Every `PlanNode` becomes one `PhysicalOp`; operators that map over a
/// set of collections (the forest outputs of `select`, subtree sets from
/// the §4 rewrites) all compile to one generic fan-out operator that runs
/// its items as morsels (see `exec/morsel.h`) and merges the per-item
/// results in item order — so the output is byte-identical to the serial
/// interpreter at any thread count.
///
/// Which fan-outs actually parallelize:
///  - `select` / `sub_select` (tree and list) read only the query's pinned
///    snapshot (`ExecContext::view`) and run their items on up to
///    `ExecContext::threads` workers.
///  - `apply` parallelizes when the lint effect analysis *certifies* its
///    function: either effect at most read-only
///    (`lint::NodeParallelCertified`) or a store-writing `FnExpr` with no
///    order dependence (`lint::NodeSnapshotWriteCertified`, the AQL021
///    analysis). Certified applies evaluate every item through a
///    snapshot-isolated `DeltaTxn`; write deltas are folded in item order
///    by one `ObjectStore::CommitBatch` after the join, so the result —
///    including the oids of created objects — is byte-identical to serial
///    at any thread count. An apply over a bare `std::function` or an
///    order-dependent write expression stays serial against the head.
///  - `split` / `all_anc` / `all_desc` invoke user callbacks with no
///    declared thread-safety contract and run serially too (see
///    docs/EXECUTION.md for the contract that would lift this).
///
/// Operators that may mutate the store (serial applies, opaque split-family
/// callbacks) re-snapshot `ExecContext::view` after completing, so
/// downstream operators observe their writes.
///
/// A null plan compiles to an error operator that reproduces the
/// interpreter's "(null)" span and InvalidArgument status, so `Compile`
/// never returns null.
PhysicalOpRef Compile(const PlanRef& plan);

/// The scheduling decision `Compile` makes for an apply node, exposed for
/// tests and the shell: true iff `plan` is a tree/list apply whose
/// function the effect analysis certifies for the morsel-parallel path.
/// (`Compile` counts each certification in `exec.apply_parallel_certified`.)
bool ApplyParallelCertified(const PlanRef& plan);

/// True iff `plan` is a tree/list apply whose store-writing function is
/// certified order-independent (AQL021-clean), so it runs morsel-parallel
/// with thread-local write deltas and a single order-stable commit.
/// Disjoint from `ApplyParallelCertified` (which covers effect <=
/// read-only).
bool ApplySnapshotWriteCertified(const PlanRef& plan);

/// A physical operator evaluating a *group* of pattern queries that share
/// one input (same `PlanEquals` child) in a single scan. The shared child
/// runs once; each tree/list item is then probed with a merged product
/// automaton (lists — `MultiNfa`/`LazyMultiDfa` over a shared
/// `PredicateAlphabet`, see `pattern/multi.h`) or a columnar
/// necessary-predicate gate (trees), and only the patterns the probe cannot
/// rule out run the unchanged per-pattern matcher. Per-plan outputs are
/// merged in item order, so each is byte-identical to what a standalone
/// serial `Execute` of that plan would return — including per-plan errors,
/// which land in `plan_results()` without failing the batch.
///
/// `Run` returns an empty set placeholder on success (read the per-plan
/// results instead); a non-OK `Run` is batch-fatal (shared-input failure,
/// item type error, cancellation) and applies to every plan in the group.
class BatchedPatternOp : public PhysicalOp {
 public:
  BatchedPatternOp(PlanRef plan, std::vector<PhysicalOpRef> children,
                   std::vector<PlanRef> plans)
      : PhysicalOp(std::move(plan), std::move(children)),
        plans_(std::move(plans)),
        results_(plans_.size(),
                 Result<Datum>(Status::Internal("batch not run"))) {}

  size_t num_plans() const { return plans_.size(); }
  const std::vector<PlanRef>& plans() const { return plans_; }

  /// Per-plan results, positional with the `plans` given to `CompileBatch`.
  /// Meaningful after an OK `Run`.
  const std::vector<Result<Datum>>& plan_results() const { return results_; }

 protected:
  std::vector<PlanRef> plans_;
  std::vector<Result<Datum>> results_;
};

/// Compiles a query group into one `BatchedPatternOp` when the plans are
/// co-compilable: 2..64 plans, all `kListSubSelect` or all
/// `kTreeSubSelect`, each with one child, and every child `PlanEquals` the
/// first (the executor pre-keys candidate groups by digest fingerprint;
/// this is the structural verification, constants included). Returns null
/// when the group is not batchable — callers then execute the plans
/// individually. Counts the group size in `exec.batched_patterns`.
std::shared_ptr<BatchedPatternOp> CompileBatch(
    const std::vector<PlanRef>& plans);

}  // namespace aqua::exec

#endif  // AQUA_EXEC_COMPILE_H_
