#ifndef AQUA_EXEC_COMPILE_H_
#define AQUA_EXEC_COMPILE_H_

#include "exec/physical_op.h"
#include "query/plan.h"

namespace aqua::exec {

/// Compiles a logical plan into a tree of physical operators.
///
/// Every `PlanNode` becomes one `PhysicalOp`; operators that map over a
/// set of collections (the forest outputs of `select`, subtree sets from
/// the §4 rewrites) all compile to one generic fan-out operator that runs
/// its items as morsels (see `exec/morsel.h`) and merges the per-item
/// results in item order — so the output is byte-identical to the serial
/// interpreter at any thread count.
///
/// Which fan-outs actually parallelize:
///  - `select` / `sub_select` (tree and list) call only const-store
///    library code and run their items on up to `ExecContext::threads`
///    workers.
///  - `apply` parallelizes when the lint effect analysis *certifies* its
///    function (a structured `FnExpr` whose effect is at most read-only,
///    see `lint/effects.h`): a certified apply never writes the object
///    store, so fanning its items out is safe and — with the order-stable
///    slot merge — byte-identical to serial. An apply over a bare
///    `std::function` or a store-mutating expression stays serial.
///  - `split` / `all_anc` / `all_desc` invoke user callbacks with no
///    declared thread-safety contract and run serially too (see
///    docs/EXECUTION.md for the contract that would lift this).
///
/// A null plan compiles to an error operator that reproduces the
/// interpreter's "(null)" span and InvalidArgument status, so `Compile`
/// never returns null.
PhysicalOpRef Compile(const PlanRef& plan);

/// The scheduling decision `Compile` makes for an apply node, exposed for
/// tests and the shell: true iff `plan` is a tree/list apply whose
/// function the effect analysis certifies for the morsel-parallel path.
/// (`Compile` counts each certification in `exec.apply_parallel_certified`.)
bool ApplyParallelCertified(const PlanRef& plan);

}  // namespace aqua::exec

#endif  // AQUA_EXEC_COMPILE_H_
