#ifndef AQUA_EXEC_COMPILE_H_
#define AQUA_EXEC_COMPILE_H_

#include "exec/physical_op.h"
#include "query/plan.h"

namespace aqua::exec {

/// Compiles a logical plan into a tree of physical operators.
///
/// Every `PlanNode` becomes one `PhysicalOp`; operators that map over a
/// set of collections (the forest outputs of `select`, subtree sets from
/// the §4 rewrites) all compile to one generic fan-out operator that runs
/// its items as morsels (see `exec/morsel.h`) and merges the per-item
/// results in item order — so the output is byte-identical to the serial
/// interpreter at any thread count.
///
/// Which fan-outs actually parallelize:
///  - `select` / `sub_select` (tree and list) read only the query's pinned
///    snapshot (`ExecContext::view`) and run their items on up to
///    `ExecContext::threads` workers.
///  - `apply` parallelizes when the lint effect analysis *certifies* its
///    function: either effect at most read-only
///    (`lint::NodeParallelCertified`) or a store-writing `FnExpr` with no
///    order dependence (`lint::NodeSnapshotWriteCertified`, the AQL021
///    analysis). Certified applies evaluate every item through a
///    snapshot-isolated `DeltaTxn`; write deltas are folded in item order
///    by one `ObjectStore::CommitBatch` after the join, so the result —
///    including the oids of created objects — is byte-identical to serial
///    at any thread count. An apply over a bare `std::function` or an
///    order-dependent write expression stays serial against the head.
///  - `split` / `all_anc` / `all_desc` invoke user callbacks with no
///    declared thread-safety contract and run serially too (see
///    docs/EXECUTION.md for the contract that would lift this).
///
/// Operators that may mutate the store (serial applies, opaque split-family
/// callbacks) re-snapshot `ExecContext::view` after completing, so
/// downstream operators observe their writes.
///
/// A null plan compiles to an error operator that reproduces the
/// interpreter's "(null)" span and InvalidArgument status, so `Compile`
/// never returns null.
PhysicalOpRef Compile(const PlanRef& plan);

/// The scheduling decision `Compile` makes for an apply node, exposed for
/// tests and the shell: true iff `plan` is a tree/list apply whose
/// function the effect analysis certifies for the morsel-parallel path.
/// (`Compile` counts each certification in `exec.apply_parallel_certified`.)
bool ApplyParallelCertified(const PlanRef& plan);

/// True iff `plan` is a tree/list apply whose store-writing function is
/// certified order-independent (AQL021-clean), so it runs morsel-parallel
/// with thread-local write deltas and a single order-stable commit.
/// Disjoint from `ApplyParallelCertified` (which covers effect <=
/// read-only).
bool ApplySnapshotWriteCertified(const PlanRef& plan);

}  // namespace aqua::exec

#endif  // AQUA_EXEC_COMPILE_H_
