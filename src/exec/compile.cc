#include "exec/compile.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "algebra/derived.h"
#include "algebra/list_ops.h"
#include "algebra/tree_ops.h"
#include "bulk/concat.h"
#include "exec/morsel.h"
#include "exec/worker_local.h"
#include "lint/effects.h"
#include "obs/metrics.h"
#include "pattern/dfa.h"
#include "pattern/nfa.h"

namespace aqua::exec {

namespace {

/// Stand-in for a null plan node: reproduces the interpreter's "(null)"
/// span (via the Run wrapper) and its InvalidArgument status.
class NullOp : public PhysicalOp {
 public:
  NullOp() : PhysicalOp(nullptr, {}) {}

 protected:
  Result<Datum> RunImpl(ExecContext&) override {
    return Status::InvalidArgument("null plan node");
  }
};

/// Leaf and scalar operators (scans, constants, indexed probes): one
/// evaluation on the query thread, no fan-out.
class SimpleOp : public PhysicalOp {
 public:
  using Fn = std::function<Result<Datum>(ExecContext&, const PlanNode&)>;

  SimpleOp(PlanRef plan, std::vector<PhysicalOpRef> children, Fn fn)
      : PhysicalOp(std::move(plan), std::move(children)), fn_(std::move(fn)) {}

 protected:
  Result<Datum> RunImpl(ExecContext& ctx) override { return fn_(ctx, *plan_); }

 private:
  Fn fn_;
};

/// Configuration of the generic map-over-set fan-out (the single code path
/// that replaced the interpreter's ForEachTree / ForEachList / per-op set
/// loops).
struct FanOutSpec {
  /// Item type: lists when true, trees otherwise (drives the type check
  /// and the trees_processed / lists_processed counter).
  bool over_lists = false;
  /// Exact interpreter TypeError messages (contract-tested).
  const char* set_error = "";
  const char* single_error = "";
  /// When the input is a single collection (not a set), return the item
  /// result directly instead of wrapping it in a set — the `apply` and
  /// list-`select` quirk.
  bool single_passthrough = false;
  /// Whether set items may run on pool workers. False for ops that mutate
  /// the store (`apply`) or invoke user callbacks with no thread-safety
  /// contract (`split` / `all_anc` / `all_desc`).
  bool parallel = false;
  /// How one item's result datum joins the output set.
  enum class Merge {
    kUnionChildren,  ///< item result is a set; insert its elements
    kInsertResult,   ///< insert the item result itself
  };
  Merge merge = Merge::kUnionChildren;
};

/// Maps an operator over the tree/list items of its input.
///
/// Items run as morsels (`RunMorsels`): contiguous item ranges claimed by
/// up to `ExecContext::threads` participants, each holding a distinct
/// worker slot for `WorkerLocal` state. Per-item results land in an
/// index-addressed slot vector and are merged serially in item order after
/// the join, so the output set (`SetInsert` dedups, keeping first
/// occurrence) is byte-identical to the serial interpreter's. On failure
/// the returned Status is the lowest-indexed failing item's — the same
/// error the serial in-order loop would have returned. Execution counters
/// may include items past the first failure (serial stops there; parallel
/// morsels already running complete), which is the one documented
/// divergence, on error paths only.
class FanOutOp : public PhysicalOp {
 public:
  FanOutOp(PlanRef plan, std::vector<PhysicalOpRef> children, FanOutSpec spec)
      : PhysicalOp(std::move(plan), std::move(children)), spec_(spec) {}

 protected:
  /// Evaluates the operator on one collection item. `worker` is the
  /// fan-out worker slot (0 on the serial path and for single inputs).
  virtual Result<Datum> RunOnItem(ExecContext& ctx, const Datum& item,
                                  size_t worker) = 0;

  Result<Datum> RunImpl(ExecContext& ctx) override {
    AQUA_ASSIGN_OR_RETURN(Datum input, RunChild(0, ctx));
    if (!input.is_set()) {
      if (ctx.query != nullptr) {
        AQUA_RETURN_IF_ERROR(ctx.query->CheckPoint());
        ctx.query->AddRows(1);
      }
      AQUA_RETURN_IF_ERROR(CheckItem(ctx, input, /*in_set=*/false));
      AQUA_ASSIGN_OR_RETURN(Datum r, RunOnItem(ctx, input, 0));
      if (spec_.single_passthrough) return r;
      Datum out = Datum::Set({});
      MergeInto(&out, std::move(r));
      return out;
    }

    const std::vector<Datum>& items = input.children();
    std::vector<std::optional<Result<Datum>>> slots(items.size());
    FanOutOptions opts;
    opts.threads = spec_.parallel ? ctx.threads : 1;
    opts.trace = ctx.trace;
    opts.morsels_run = &ctx.morsels_run;
    opts.morsel_max_ns = &ctx.morsel_max_ns;
    opts.query = ctx.query;
    ThreadPool& pool =
        ctx.pool != nullptr ? *ctx.pool : ThreadPool::Shared();
    AQUA_RETURN_IF_ERROR(RunMorsels(
        pool, items.size(), opts, [&](const Morsel& m) -> Status {
          for (size_t i = m.begin; i < m.end; ++i) {
            if (ctx.query != nullptr) {
              AQUA_RETURN_IF_ERROR(ctx.query->CheckPoint());
              ctx.query->AddRows(1);
            }
            AQUA_RETURN_IF_ERROR(CheckItem(ctx, items[i], /*in_set=*/true));
            Result<Datum> r = RunOnItem(ctx, items[i], m.worker);
            Status st = r.status();
            slots[i].emplace(std::move(r));
            AQUA_RETURN_IF_ERROR(st);
          }
          return Status::OK();
        }));
    // RunMorsels returned OK, so every slot holds an OK result; merging in
    // item order reproduces the serial insertion sequence exactly.
    Datum out = Datum::Set({});
    for (auto& slot : slots) MergeInto(&out, std::move(**slot));
    return out;
  }

 private:
  Status CheckItem(ExecContext& ctx, const Datum& d, bool in_set) const {
    if (spec_.over_lists ? !d.is_list() : !d.is_tree()) {
      return Status::TypeError(in_set ? spec_.set_error : spec_.single_error);
    }
    (spec_.over_lists ? ctx.lists_processed : ctx.trees_processed)
        .fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  void MergeInto(Datum* out, Datum&& r) const {
    if (spec_.merge == FanOutSpec::Merge::kUnionChildren) {
      for (const Datum& d : r.children()) out->SetInsert(d);
    } else {
      out->SetInsert(std::move(r));
    }
  }

  FanOutSpec spec_;
};

/// Fan-out whose per-item evaluation is a stateless function of the plan
/// node — every fan-out operator except list sub_select.
class LambdaFanOutOp : public FanOutOp {
 public:
  using ItemFn =
      std::function<Result<Datum>(ExecContext&, const PlanNode&, const Datum&)>;

  LambdaFanOutOp(PlanRef plan, std::vector<PhysicalOpRef> children,
                 FanOutSpec spec, ItemFn fn)
      : FanOutOp(std::move(plan), std::move(children), spec),
        fn_(std::move(fn)) {}

 protected:
  Result<Datum> RunOnItem(ExecContext& ctx, const Datum& item,
                          size_t) override {
    return fn_(ctx, *plan_, item);
  }

 private:
  ItemFn fn_;
};

/// List sub_select with the NFA existence prefilter hoisted into
/// `Prepare`: the search NFA is compiled once per Execute (the interpreter
/// recompiled it per list) and shared read-only across workers
/// (`Nfa::ExistsMatch` is const). Each worker slot additionally warms its
/// own `LazyDfa` over that NFA — the DFA mutates its transition cache
/// while matching, so instances are per-worker rather than shared, and the
/// cache amortizes across all the lists one worker scans.
class ListSubSelectOp : public FanOutOp {
 public:
  using FanOutOp::FanOutOp;

  Status Prepare(ExecContext& ctx) override {
    AQUA_RETURN_IF_ERROR(FanOutOp::Prepare(ctx));
    auto nfa = Nfa::CompileSearch(plan_->lpattern.body);
    if (!nfa.ok()) return Status::OK();  // matcher validates the pattern
    nfa_.emplace(std::move(*nfa));
    dfas_.emplace(std::max<size_t>(ctx.threads, 1));
    for (size_t s = 0; s < dfas_->size(); ++s) {
      auto dfa = LazyDfa::Make(&*nfa_);
      if (dfa.ok()) dfas_->at(s).emplace(std::move(*dfa));
    }
    return Status::OK();
  }

 protected:
  Result<Datum> RunOnItem(ExecContext& ctx, const Datum& item,
                          size_t worker) override {
    ListPrefilter pre;
    if (nfa_.has_value()) {
      pre.nfa = &*nfa_;
      if (dfas_.has_value() && worker < dfas_->size() &&
          dfas_->at(worker).has_value()) {
        pre.dfa = &*dfas_->at(worker);
      }
    }
    return ListSubSelectPrefiltered(ctx.db->store(), item.list(),
                                    plan_->lpattern, plan_->lsplit_opts, pre);
  }

 private:
  std::optional<Nfa> nfa_;
  std::optional<WorkerLocal<std::optional<LazyDfa>>> dfas_;
};

constexpr char kTreeSetErr[] = "tree operator over a set containing a non-tree";
constexpr char kTreeSingleErr[] = "tree operator applied to a non-tree datum";
constexpr char kTreeApplySetErr[] = "apply over a set containing a non-tree";
constexpr char kTreeApplySingleErr[] = "apply over a non-tree datum";
constexpr char kListSetErr[] = "list operator over a set containing a non-list";
constexpr char kListSingleErr[] = "list operator applied to a non-list datum";
constexpr char kListApplySetErr[] = "apply over a set containing a non-list";
constexpr char kListApplySingleErr[] = "apply over a non-list datum";

FanOutSpec TreeSpec(bool parallel) {
  FanOutSpec spec;
  spec.set_error = kTreeSetErr;
  spec.single_error = kTreeSingleErr;
  spec.parallel = parallel;
  return spec;
}

FanOutSpec ListSpec(bool parallel) {
  FanOutSpec spec;
  spec.over_lists = true;
  spec.set_error = kListSetErr;
  spec.single_error = kListSingleErr;
  spec.parallel = parallel;
  return spec;
}

}  // namespace

bool ApplyParallelCertified(const PlanRef& plan) {
  return plan != nullptr && lint::NodeParallelCertified(*plan);
}

PhysicalOpRef Compile(const PlanRef& plan) {
  if (plan == nullptr) return std::make_shared<NullOp>();
  std::vector<PhysicalOpRef> children;
  children.reserve(plan->children.size());
  for (const PlanRef& c : plan->children) children.push_back(Compile(c));

  switch (plan->op) {
    case PlanOp::kEmptySet:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext&, const PlanNode&) -> Result<Datum> {
            return Datum::Set({});
          });
    case PlanOp::kEmptyList:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext&, const PlanNode&) -> Result<Datum> {
            return Datum::Of(List());
          });
    case PlanOp::kScanTree:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext& ctx, const PlanNode& n) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(const Tree* tree,
                                  ctx.db->GetTree(n.collection));
            return Datum::Of(*tree);
          });
    case PlanOp::kScanList:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext& ctx, const PlanNode& n) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(const List* list,
                                  ctx.db->GetList(n.collection));
            return Datum::Of(*list);
          });
    case PlanOp::kTreeSelect:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), TreeSpec(/*parallel=*/true),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(
                std::vector<Tree> forest,
                TreeSelect(ctx.db->store(), item.tree(), n.pred));
            Datum out = Datum::Set({});
            for (Tree& piece : forest) {
              out.SetInsert(Datum::Of(std::move(piece)));
            }
            return out;
          });
    case PlanOp::kTreeApply: {
      // Serial unless the effect analysis certifies the function: a
      // certified apply (structured FnExpr, effect <= read-only) never
      // touches the store, so the fan-out is safe and the order-stable
      // merge keeps it byte-identical to serial.
      bool certified = ApplyParallelCertified(plan);
      if (certified) AQUA_OBS_COUNT("exec.apply_parallel_certified", 1);
      FanOutSpec spec = TreeSpec(/*parallel=*/certified);
      spec.set_error = kTreeApplySetErr;
      spec.single_error = kTreeApplySingleErr;
      spec.single_passthrough = true;
      spec.merge = FanOutSpec::Merge::kInsertResult;
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), spec,
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(
                Tree mapped,
                TreeApply(ctx.db->store(), item.tree(), n.node_fn));
            return Datum::Of(std::move(mapped));
          });
    }
    case PlanOp::kTreeSubSelect:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), TreeSpec(/*parallel=*/true),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return TreeSubSelect(ctx.db->store(), item.tree(), n.tpattern,
                                 n.split_opts);
          });
    case PlanOp::kTreeSplit:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), TreeSpec(/*parallel=*/false),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return TreeSplit(ctx.db->store(), item.tree(), n.tpattern,
                             n.split_fn, n.split_opts);
          });
    case PlanOp::kTreeAllAnc:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), TreeSpec(/*parallel=*/false),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return TreeAllAnc(ctx.db->store(), item.tree(), n.tpattern,
                              n.anc_fn, n.split_opts);
          });
    case PlanOp::kTreeAllDesc:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), TreeSpec(/*parallel=*/false),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return TreeAllDesc(ctx.db->store(), item.tree(), n.tpattern,
                               n.desc_fn, n.split_opts);
          });
    case PlanOp::kIndexedSubSelect:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext& ctx, const PlanNode& n) -> Result<Datum> {
            const ObjectStore& store = ctx.db->store();
            AQUA_ASSIGN_OR_RETURN(const Tree* tree,
                                  ctx.db->GetTree(n.collection));
            AQUA_ASSIGN_OR_RETURN(const AttributeIndex* index,
                                  ctx.db->indexes().Get(n.collection, n.attr));
            ctx.index_probes.fetch_add(1, std::memory_order_relaxed);
            AQUA_ASSIGN_OR_RETURN(std::vector<NodeId> candidates,
                                  index->Probe(*n.anchor));
            ctx.index_candidates.fetch_add(candidates.size(),
                                           std::memory_order_relaxed);
            TreeMatcher matcher(store, *tree, n.split_opts.match);
            AQUA_ASSIGN_OR_RETURN(
                std::vector<TreeMatch> matches,
                matcher.FindAllAtRoots(n.tpattern, candidates));
            Datum out = Datum::Set({});
            for (const TreeMatch& m : matches) {
              AQUA_ASSIGN_OR_RETURN(Tree y,
                                    MakeMatchPiece(*tree, m, n.split_opts));
              out.SetInsert(Datum::Of(CloseAllPoints(y)));
            }
            return out;
          });
    case PlanOp::kIndexedListSubSelect:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext& ctx, const PlanNode& n) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(const List* list,
                                  ctx.db->GetList(n.collection));
            AQUA_ASSIGN_OR_RETURN(const AttributeIndex* index,
                                  ctx.db->indexes().Get(n.collection, n.attr));
            ctx.index_probes.fetch_add(1, std::memory_order_relaxed);
            AQUA_ASSIGN_OR_RETURN(std::vector<NodeId> candidates,
                                  index->Probe(*n.anchor));
            ctx.index_candidates.fetch_add(candidates.size(),
                                           std::memory_order_relaxed);
            return ListSubSelectIndexed(ctx.db->store(), *list, n.lpattern,
                                        *index, n.lsplit_opts);
          });
    case PlanOp::kListSelect: {
      FanOutSpec spec = ListSpec(/*parallel=*/true);
      spec.single_passthrough = true;
      spec.merge = FanOutSpec::Merge::kInsertResult;
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), spec,
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(
                List filtered, ListSelect(ctx.db->store(), item.list(), n.pred));
            return Datum::Of(std::move(filtered));
          });
    }
    case PlanOp::kListApply: {
      bool certified = ApplyParallelCertified(plan);
      if (certified) AQUA_OBS_COUNT("exec.apply_parallel_certified", 1);
      FanOutSpec spec = ListSpec(/*parallel=*/certified);
      spec.set_error = kListApplySetErr;
      spec.single_error = kListApplySingleErr;
      spec.single_passthrough = true;
      spec.merge = FanOutSpec::Merge::kInsertResult;
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), spec,
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(
                List mapped,
                ListApply(ctx.db->store(), item.list(), n.lnode_fn));
            return Datum::Of(std::move(mapped));
          });
    }
    case PlanOp::kListSubSelect:
      return std::make_shared<ListSubSelectOp>(plan, std::move(children),
                                               ListSpec(/*parallel=*/true));
    case PlanOp::kListSplit:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), ListSpec(/*parallel=*/false),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return ListSplit(ctx.db->store(), item.list(), n.lpattern,
                             n.lsplit_fn, n.lsplit_opts);
          });
    case PlanOp::kListAllAnc:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), ListSpec(/*parallel=*/false),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return ListAllAnc(ctx.db->store(), item.list(), n.lpattern,
                              n.lanc_fn, n.lsplit_opts);
          });
    case PlanOp::kListAllDesc:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), ListSpec(/*parallel=*/false),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return ListAllDesc(ctx.db->store(), item.list(), n.lpattern,
                               n.ldesc_fn, n.lsplit_opts);
          });
  }
  return std::make_shared<NullOp>();  // unreachable with a valid enum
}

}  // namespace aqua::exec
