#include "exec/compile.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "algebra/derived.h"
#include "algebra/fn_expr.h"
#include "algebra/list_ops.h"
#include "algebra/tree_ops.h"
#include "bulk/concat.h"
#include "exec/morsel.h"
#include "exec/worker_local.h"
#include "lint/effects.h"
#include "object/store_txn.h"
#include "obs/metrics.h"
#include "pattern/dfa.h"
#include "pattern/multi.h"
#include "pattern/nfa.h"

namespace aqua::exec {

namespace {

/// Stand-in for a null plan node: reproduces the interpreter's "(null)"
/// span (via the Run wrapper) and its InvalidArgument status.
class NullOp : public PhysicalOp {
 public:
  NullOp() : PhysicalOp(nullptr, {}) {}

 protected:
  Result<Datum> RunImpl(ExecContext&) override {
    return Status::InvalidArgument("null plan node");
  }
};

/// Leaf and scalar operators (scans, constants, indexed probes): one
/// evaluation on the query thread, no fan-out.
class SimpleOp : public PhysicalOp {
 public:
  using Fn = std::function<Result<Datum>(ExecContext&, const PlanNode&)>;

  SimpleOp(PlanRef plan, std::vector<PhysicalOpRef> children, Fn fn)
      : PhysicalOp(std::move(plan), std::move(children)), fn_(std::move(fn)) {}

 protected:
  Result<Datum> RunImpl(ExecContext& ctx) override { return fn_(ctx, *plan_); }

 private:
  Fn fn_;
};

/// Configuration of the generic map-over-set fan-out (the single code path
/// that replaced the interpreter's ForEachTree / ForEachList / per-op set
/// loops).
struct FanOutSpec {
  /// Item type: lists when true, trees otherwise (drives the type check
  /// and the trees_processed / lists_processed counter).
  bool over_lists = false;
  /// Exact interpreter TypeError messages (contract-tested).
  const char* set_error = "";
  const char* single_error = "";
  /// When the input is a single collection (not a set), return the item
  /// result directly instead of wrapping it in a set — the `apply` and
  /// list-`select` quirk.
  bool single_passthrough = false;
  /// Whether set items may run on pool workers. False for ops that mutate
  /// the head store (uncertified `apply`) or invoke user callbacks with no
  /// thread-safety contract (`split` / `all_anc` / `all_desc`).
  bool parallel = false;
  /// Re-snapshot `ExecContext::view` after the batch (even on error): set
  /// for ops whose item evaluation may mutate the head store, so
  /// downstream operators observe the writes. Nearly free when nothing
  /// changed (the head-version cache returns the same `StoreVersion`).
  bool refresh_view = false;
  /// How one item's result datum joins the output set.
  enum class Merge {
    kUnionChildren,  ///< item result is a set; insert its elements
    kInsertResult,   ///< insert the item result itself
  };
  Merge merge = Merge::kUnionChildren;
};

/// Maps an operator over the tree/list items of its input.
///
/// Items run as morsels (`RunMorsels`): contiguous item ranges claimed by
/// up to `ExecContext::threads` participants, each holding a distinct
/// worker slot for `WorkerLocal` state. Per-item results land in an
/// index-addressed slot vector and are merged serially in item order after
/// the join, so the output set (`SetInsert` dedups, keeping first
/// occurrence) is byte-identical to the serial interpreter's. On failure
/// the returned Status is the lowest-indexed failing item's — the same
/// error the serial in-order loop would have returned. Execution counters
/// may include items past the first failure (serial stops there; parallel
/// morsels already running complete), which is the one documented
/// divergence, on error paths only.
class FanOutOp : public PhysicalOp {
 public:
  FanOutOp(PlanRef plan, std::vector<PhysicalOpRef> children, FanOutSpec spec)
      : PhysicalOp(std::move(plan), std::move(children)), spec_(spec) {}

 protected:
  using Slots = std::vector<std::optional<Result<Datum>>>;

  /// Evaluates the operator on one collection item. `index` is the item's
  /// position in the batch (0 for a single non-set input); `worker` is the
  /// fan-out worker slot (0 on the serial path and for single inputs).
  virtual Result<Datum> RunOnItem(ExecContext& ctx, const Datum& item,
                                  size_t index, size_t worker) = 0;

  /// Called on the query thread before any item runs, with the batch size.
  virtual void OnBatchStart(ExecContext&, size_t) {}

  /// Called on the query thread after every item succeeded, before the
  /// merge; may rewrite the slot datums in place (the certified-apply
  /// commit hook). Not called when an item failed — a failing batch
  /// publishes nothing.
  virtual Status AfterItems(ExecContext&, Slots*) { return Status::OK(); }

  Result<Datum> RunImpl(ExecContext& ctx) override {
    Result<Datum> out = RunBatch(ctx);
    // Even on error: a serial apply mutates the head up to the failing
    // item, and those writes must be visible downstream.
    if (spec_.refresh_view && ctx.db != nullptr) ctx.view = ctx.db->store();
    return out;
  }

 private:
  Result<Datum> RunBatch(ExecContext& ctx) {
    AQUA_ASSIGN_OR_RETURN(Datum input, RunChild(0, ctx));
    if (!input.is_set()) {
      if (ctx.query != nullptr) {
        AQUA_RETURN_IF_ERROR(ctx.query->CheckPoint());
        ctx.query->AddRows(1);
      }
      AQUA_RETURN_IF_ERROR(CheckItem(ctx, input, /*in_set=*/false));
      OnBatchStart(ctx, 1);
      Slots slots(1);
      slots[0].emplace(RunOnItem(ctx, input, 0, 0));
      AQUA_RETURN_IF_ERROR(slots[0]->status());
      AQUA_RETURN_IF_ERROR(AfterItems(ctx, &slots));
      Datum r = std::move(**slots[0]);
      if (spec_.single_passthrough) return r;
      Datum out = Datum::Set({});
      MergeInto(&out, std::move(r));
      return out;
    }

    const std::vector<Datum>& items = input.children();
    OnBatchStart(ctx, items.size());
    Slots slots(items.size());
    FanOutOptions opts;
    opts.threads = spec_.parallel ? ctx.threads : 1;
    opts.trace = ctx.trace;
    opts.morsels_run = &ctx.morsels_run;
    opts.morsel_max_ns = &ctx.morsel_max_ns;
    opts.query = ctx.query;
    ThreadPool& pool =
        ctx.pool != nullptr ? *ctx.pool : ThreadPool::Shared();
    AQUA_RETURN_IF_ERROR(RunMorsels(
        pool, items.size(), opts, [&](const Morsel& m) -> Status {
          for (size_t i = m.begin; i < m.end; ++i) {
            if (ctx.query != nullptr) {
              AQUA_RETURN_IF_ERROR(ctx.query->CheckPoint());
              ctx.query->AddRows(1);
            }
            AQUA_RETURN_IF_ERROR(CheckItem(ctx, items[i], /*in_set=*/true));
            Result<Datum> r = RunOnItem(ctx, items[i], i, m.worker);
            Status st = r.status();
            slots[i].emplace(std::move(r));
            AQUA_RETURN_IF_ERROR(st);
          }
          return Status::OK();
        }));
    // RunMorsels returned OK, so every slot holds an OK result; merging in
    // item order reproduces the serial insertion sequence exactly.
    AQUA_RETURN_IF_ERROR(AfterItems(ctx, &slots));
    Datum out = Datum::Set({});
    for (auto& slot : slots) MergeInto(&out, std::move(**slot));
    return out;
  }
  Status CheckItem(ExecContext& ctx, const Datum& d, bool in_set) const {
    if (spec_.over_lists ? !d.is_list() : !d.is_tree()) {
      return Status::TypeError(in_set ? spec_.set_error : spec_.single_error);
    }
    (spec_.over_lists ? ctx.lists_processed : ctx.trees_processed)
        .fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  void MergeInto(Datum* out, Datum&& r) const {
    if (spec_.merge == FanOutSpec::Merge::kUnionChildren) {
      for (const Datum& d : r.children()) out->SetInsert(d);
    } else {
      out->SetInsert(std::move(r));
    }
  }

  FanOutSpec spec_;
};

/// Fan-out whose per-item evaluation is a stateless function of the plan
/// node — every fan-out operator except list sub_select.
class LambdaFanOutOp : public FanOutOp {
 public:
  using ItemFn =
      std::function<Result<Datum>(ExecContext&, const PlanNode&, const Datum&)>;

  LambdaFanOutOp(PlanRef plan, std::vector<PhysicalOpRef> children,
                 FanOutSpec spec, ItemFn fn)
      : FanOutOp(std::move(plan), std::move(children), spec),
        fn_(std::move(fn)) {}

 protected:
  Result<Datum> RunOnItem(ExecContext& ctx, const Datum& item, size_t,
                          size_t) override {
    return fn_(ctx, *plan_, item);
  }

 private:
  ItemFn fn_;
};

/// The certified `apply` path, tree and list: every item evaluates through
/// a `DeltaTxn` over the query snapshot, so reads never touch the head
/// lock. Read-only-certified applies produce empty deltas and commit
/// nothing. Snapshot-write-certified applies (AQL021-clean, see
/// `lint::NodeSnapshotWriteCertified`) buffer thread-local write deltas
/// per item; after the join, one `CommitBatch` folds them in item order —
/// one new store version per apply, allocating exactly the oids a serial
/// left-to-right fold would have — and the provisional oids in each item's
/// result are rewritten to their committed finals. One documented
/// divergence from the serial path: a failing certified apply commits
/// nothing (all-or-nothing), where serial leaves the writes of the items
/// before the failure.
class CertifiedApplyOp : public FanOutOp {
 public:
  CertifiedApplyOp(PlanRef plan, std::vector<PhysicalOpRef> children,
                   FanOutSpec spec, bool writes)
      : FanOutOp(std::move(plan), std::move(children), spec),
        writes_(writes) {}

 protected:
  void OnBatchStart(ExecContext&, size_t n) override {
    deltas_.assign(n, ItemDelta{});
  }

  Result<Datum> RunOnItem(ExecContext& ctx, const Datum& item, size_t index,
                          size_t) override {
    // Certification implies a structured fn_expr (opaque functions are
    // never certified), so the dereference is safe.
    const FnExpr& fn = *plan_->fn_expr;
    DeltaTxn txn(ctx.view);
    auto cell = [&fn](StoreTxn& t, Oid oid) { return fn.Eval(t, oid); };
    Result<Datum> out = [&]() -> Result<Datum> {
      if (plan_->op == PlanOp::kListApply) {
        AQUA_ASSIGN_OR_RETURN(List mapped,
                              ListApplyTxn(txn, item.list(), cell));
        return Datum::Of(std::move(mapped));
      }
      AQUA_ASSIGN_OR_RETURN(Tree mapped, TreeApplyTxn(txn, item.tree(), cell));
      return Datum::Of(std::move(mapped));
    }();
    // Distinct indices, so worker threads never write the same slot.
    if (writes_ && out.ok()) deltas_[index] = txn.Take();
    return out;
  }

  Status AfterItems(ExecContext& ctx, Slots* slots) override {
    if (!writes_) return Status::OK();
    AQUA_ASSIGN_OR_RETURN(std::vector<std::vector<Oid>> finals,
                          ctx.db->store().CommitBatch(std::move(deltas_)));
    deltas_.clear();
    AQUA_OBS_COUNT("exec.apply_snapshot_commits", 1);
    for (size_t i = 0; i < slots->size(); ++i) {
      const std::vector<Oid>& f = finals[i];
      auto remap = [&f](Oid oid) {
        return IsProvisionalOid(oid) ? f[ProvisionalOidIndex(oid)] : oid;
      };
      Datum& d = **(*slots)[i];
      if (d.is_list()) {
        List l = d.list();
        l.MapCells(remap);
        d = Datum::Of(std::move(l));
      } else {
        Tree t = d.tree();
        t.MapCells(remap);
        d = Datum::Of(std::move(t));
      }
    }
    // Downstream operators read the version this apply just committed.
    ctx.view = ctx.db->store();
    return Status::OK();
  }

 private:
  bool writes_;
  std::vector<ItemDelta> deltas_;
};

/// List sub_select with the NFA existence prefilter hoisted into
/// `Prepare`: the search NFA is compiled once per Execute (the interpreter
/// recompiled it per list) and shared read-only across workers
/// (`Nfa::ExistsMatch` is const). Each worker slot additionally warms its
/// own `LazyDfa` over that NFA — the DFA mutates its transition cache
/// while matching, so instances are per-worker rather than shared, and the
/// cache amortizes across all the lists one worker scans.
class ListSubSelectOp : public FanOutOp {
 public:
  using FanOutOp::FanOutOp;

  Status Prepare(ExecContext& ctx) override {
    AQUA_RETURN_IF_ERROR(FanOutOp::Prepare(ctx));
    auto nfa = Nfa::CompileSearch(plan_->lpattern.body);
    if (!nfa.ok()) return Status::OK();  // matcher validates the pattern
    nfa_.emplace(std::move(*nfa));
    dfas_.emplace(std::max<size_t>(ctx.threads, 1));
    for (size_t s = 0; s < dfas_->size(); ++s) {
      auto dfa = LazyDfa::Make(&*nfa_);
      if (dfa.ok()) dfas_->at(s).emplace(std::move(*dfa));
    }
    return Status::OK();
  }

 protected:
  Result<Datum> RunOnItem(ExecContext& ctx, const Datum& item, size_t,
                          size_t worker) override {
    ListPrefilter pre;
    if (nfa_.has_value()) {
      pre.nfa = &*nfa_;
      if (dfas_.has_value() && worker < dfas_->size() &&
          dfas_->at(worker).has_value()) {
        pre.dfa = &*dfas_->at(worker);
      }
    }
    return ListSubSelectPrefiltered(ctx.view, item.list(), plan_->lpattern,
                                    plan_->lsplit_opts, pre);
  }

 private:
  std::optional<Nfa> nfa_;
  std::optional<WorkerLocal<std::optional<LazyDfa>>> dfas_;
};

constexpr char kTreeSetErr[] = "tree operator over a set containing a non-tree";
constexpr char kTreeSingleErr[] = "tree operator applied to a non-tree datum";
constexpr char kTreeApplySetErr[] = "apply over a set containing a non-tree";
constexpr char kTreeApplySingleErr[] = "apply over a non-tree datum";
constexpr char kListSetErr[] = "list operator over a set containing a non-list";
constexpr char kListSingleErr[] = "list operator applied to a non-list datum";
constexpr char kListApplySetErr[] = "apply over a set containing a non-list";
constexpr char kListApplySingleErr[] = "apply over a non-list datum";

FanOutSpec TreeSpec(bool parallel) {
  FanOutSpec spec;
  spec.set_error = kTreeSetErr;
  spec.single_error = kTreeSingleErr;
  spec.parallel = parallel;
  return spec;
}

FanOutSpec ListSpec(bool parallel) {
  FanOutSpec spec;
  spec.over_lists = true;
  spec.set_error = kListSetErr;
  spec.single_error = kListSingleErr;
  spec.parallel = parallel;
  return spec;
}

// Spec for the split family: serial (the user callback declares no
// thread-safety contract), and since that callback may capture the
// database and mutate it, the query view refreshes after the batch.
FanOutSpec OpaqueTreeSpec() {
  FanOutSpec spec = TreeSpec(/*parallel=*/false);
  spec.refresh_view = true;
  return spec;
}

FanOutSpec OpaqueListSpec() {
  FanOutSpec spec = ListSpec(/*parallel=*/false);
  spec.refresh_view = true;
  return spec;
}

}  // namespace

bool ApplyParallelCertified(const PlanRef& plan) {
  return plan != nullptr && lint::NodeParallelCertified(*plan);
}

bool ApplySnapshotWriteCertified(const PlanRef& plan) {
  return plan != nullptr && lint::NodeSnapshotWriteCertified(*plan);
}

PhysicalOpRef Compile(const PlanRef& plan) {
  if (plan == nullptr) return std::make_shared<NullOp>();
  std::vector<PhysicalOpRef> children;
  children.reserve(plan->children.size());
  for (const PlanRef& c : plan->children) children.push_back(Compile(c));

  switch (plan->op) {
    case PlanOp::kEmptySet:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext&, const PlanNode&) -> Result<Datum> {
            return Datum::Set({});
          });
    case PlanOp::kEmptyList:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext&, const PlanNode&) -> Result<Datum> {
            return Datum::Of(List());
          });
    case PlanOp::kScanTree:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext& ctx, const PlanNode& n) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(const Tree* tree,
                                  ctx.db->GetTree(n.collection));
            return Datum::Of(*tree);
          });
    case PlanOp::kScanList:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext& ctx, const PlanNode& n) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(const List* list,
                                  ctx.db->GetList(n.collection));
            return Datum::Of(*list);
          });
    case PlanOp::kTreeSelect:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), TreeSpec(/*parallel=*/true),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(
                std::vector<Tree> forest,
                TreeSelect(ctx.view, item.tree(), n.pred));
            Datum out = Datum::Set({});
            for (Tree& piece : forest) {
              out.SetInsert(Datum::Of(std::move(piece)));
            }
            return out;
          });
    case PlanOp::kTreeApply: {
      // Three-mode compile. Certified (read-only effect, or store-writing
      // with no order dependence): snapshot-isolated morsel-parallel path.
      // Uncertified: serial against the head, re-snapshotting after.
      bool read_cert = ApplyParallelCertified(plan);
      bool write_cert = ApplySnapshotWriteCertified(plan);
      FanOutSpec spec = TreeSpec(/*parallel=*/read_cert || write_cert);
      spec.set_error = kTreeApplySetErr;
      spec.single_error = kTreeApplySingleErr;
      spec.single_passthrough = true;
      spec.merge = FanOutSpec::Merge::kInsertResult;
      if (read_cert || write_cert) {
        AQUA_OBS_COUNT("exec.apply_parallel_certified", 1);
        return std::make_shared<CertifiedApplyOp>(plan, std::move(children),
                                                  spec, write_cert);
      }
      spec.refresh_view = true;  // node_fn may have mutated the head
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), spec,
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(
                Tree mapped,
                TreeApply(ctx.db->store(), item.tree(), n.node_fn));
            return Datum::Of(std::move(mapped));
          });
    }
    case PlanOp::kTreeSubSelect:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), TreeSpec(/*parallel=*/true),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return TreeSubSelect(ctx.view, item.tree(), n.tpattern,
                                 n.split_opts);
          });
    case PlanOp::kTreeSplit:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), OpaqueTreeSpec(),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return TreeSplit(ctx.view, item.tree(), n.tpattern, n.split_fn,
                             n.split_opts);
          });
    case PlanOp::kTreeAllAnc:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), OpaqueTreeSpec(),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return TreeAllAnc(ctx.view, item.tree(), n.tpattern, n.anc_fn,
                              n.split_opts);
          });
    case PlanOp::kTreeAllDesc:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), OpaqueTreeSpec(),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return TreeAllDesc(ctx.view, item.tree(), n.tpattern, n.desc_fn,
                               n.split_opts);
          });
    case PlanOp::kIndexedSubSelect:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext& ctx, const PlanNode& n) -> Result<Datum> {
            const StoreView& store = ctx.view;
            AQUA_ASSIGN_OR_RETURN(const Tree* tree,
                                  ctx.db->GetTree(n.collection));
            AQUA_ASSIGN_OR_RETURN(const AttributeIndex* index,
                                  ctx.db->indexes().Get(n.collection, n.attr));
            ctx.index_probes.fetch_add(1, std::memory_order_relaxed);
            AQUA_ASSIGN_OR_RETURN(std::vector<NodeId> candidates,
                                  index->Probe(*n.anchor));
            ctx.index_candidates.fetch_add(candidates.size(),
                                           std::memory_order_relaxed);
            TreeMatcher matcher(store, *tree, n.split_opts.match);
            AQUA_ASSIGN_OR_RETURN(
                std::vector<TreeMatch> matches,
                matcher.FindAllAtRoots(n.tpattern, candidates));
            Datum out = Datum::Set({});
            for (const TreeMatch& m : matches) {
              AQUA_ASSIGN_OR_RETURN(Tree y,
                                    MakeMatchPiece(*tree, m, n.split_opts));
              out.SetInsert(Datum::Of(CloseAllPoints(y)));
            }
            return out;
          });
    case PlanOp::kIndexedListSubSelect:
      return std::make_shared<SimpleOp>(
          plan, std::move(children),
          [](ExecContext& ctx, const PlanNode& n) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(const List* list,
                                  ctx.db->GetList(n.collection));
            AQUA_ASSIGN_OR_RETURN(const AttributeIndex* index,
                                  ctx.db->indexes().Get(n.collection, n.attr));
            ctx.index_probes.fetch_add(1, std::memory_order_relaxed);
            AQUA_ASSIGN_OR_RETURN(std::vector<NodeId> candidates,
                                  index->Probe(*n.anchor));
            ctx.index_candidates.fetch_add(candidates.size(),
                                           std::memory_order_relaxed);
            return ListSubSelectIndexed(ctx.view, *list, n.lpattern, *index,
                                        n.lsplit_opts);
          });
    case PlanOp::kListSelect: {
      FanOutSpec spec = ListSpec(/*parallel=*/true);
      spec.single_passthrough = true;
      spec.merge = FanOutSpec::Merge::kInsertResult;
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), spec,
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(List filtered,
                                  ListSelect(ctx.view, item.list(), n.pred));
            return Datum::Of(std::move(filtered));
          });
    }
    case PlanOp::kListApply: {
      bool read_cert = ApplyParallelCertified(plan);
      bool write_cert = ApplySnapshotWriteCertified(plan);
      FanOutSpec spec = ListSpec(/*parallel=*/read_cert || write_cert);
      spec.set_error = kListApplySetErr;
      spec.single_error = kListApplySingleErr;
      spec.single_passthrough = true;
      spec.merge = FanOutSpec::Merge::kInsertResult;
      if (read_cert || write_cert) {
        AQUA_OBS_COUNT("exec.apply_parallel_certified", 1);
        return std::make_shared<CertifiedApplyOp>(plan, std::move(children),
                                                  spec, write_cert);
      }
      spec.refresh_view = true;  // lnode_fn may have mutated the head
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), spec,
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            AQUA_ASSIGN_OR_RETURN(
                List mapped,
                ListApply(ctx.db->store(), item.list(), n.lnode_fn));
            return Datum::Of(std::move(mapped));
          });
    }
    case PlanOp::kListSubSelect:
      return std::make_shared<ListSubSelectOp>(plan, std::move(children),
                                               ListSpec(/*parallel=*/true));
    case PlanOp::kListSplit:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), OpaqueListSpec(),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return ListSplit(ctx.view, item.list(), n.lpattern, n.lsplit_fn,
                             n.lsplit_opts);
          });
    case PlanOp::kListAllAnc:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), OpaqueListSpec(),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return ListAllAnc(ctx.view, item.list(), n.lpattern, n.lanc_fn,
                              n.lsplit_opts);
          });
    case PlanOp::kListAllDesc:
      return std::make_shared<LambdaFanOutOp>(
          plan, std::move(children), OpaqueListSpec(),
          [](ExecContext& ctx, const PlanNode& n,
             const Datum& item) -> Result<Datum> {
            return ListAllDesc(ctx.view, item.list(), n.lpattern, n.ldesc_fn,
                               n.lsplit_opts);
          });
  }
  return std::make_shared<NullOp>();  // unreachable with a valid enum
}

namespace {

/// Shared batch machinery of the list/tree batched operators: run the
/// common child once, fan the items out as morsels (mirroring `FanOutOp` —
/// per-item checkpoint, exact interpreter type errors, order-stable
/// slots), and merge each plan's per-item results in item order. Item type
/// errors and checkpoint failures are batch-fatal (a standalone execution
/// of *every* plan in the group would fail identically, since they share
/// the input); a per-plan matcher error is not — it becomes that plan's
/// result, chosen from the lowest-indexed failing item like the serial
/// in-order loop.
class BatchedMatchOpBase : public BatchedPatternOp {
 public:
  using BatchedPatternOp::BatchedPatternOp;

 protected:
  /// Evaluates all plans over one item, writing `plans_.size()` entries
  /// into `out` (pre-filled with per-plan placeholders).
  virtual void RunItem(ExecContext& ctx, const Datum& item, size_t worker,
                       std::vector<Result<Datum>>* out) = 0;

  /// True for the list group (drives the type check + counters).
  virtual bool over_lists() const = 0;

  Result<Datum> RunImpl(ExecContext& ctx) override {
    AQUA_ASSIGN_OR_RETURN(Datum input, RunChild(0, ctx));
    std::vector<const Datum*> items;
    if (input.is_set()) {
      items.reserve(input.children().size());
      for (const Datum& d : input.children()) items.push_back(&d);
    } else {
      items.push_back(&input);
    }
    const bool in_set = input.is_set();
    const size_t n_plans = plans_.size();

    std::vector<std::vector<Result<Datum>>> slots(
        items.size(),
        std::vector<Result<Datum>>(
            n_plans, Result<Datum>(Status::Internal("item not run"))));
    FanOutOptions opts;
    opts.threads = ctx.threads;
    opts.trace = ctx.trace;
    opts.morsels_run = &ctx.morsels_run;
    opts.morsel_max_ns = &ctx.morsel_max_ns;
    opts.query = ctx.query;
    ThreadPool& pool = ctx.pool != nullptr ? *ctx.pool : ThreadPool::Shared();
    AQUA_RETURN_IF_ERROR(RunMorsels(
        pool, items.size(), opts, [&](const Morsel& m) -> Status {
          for (size_t i = m.begin; i < m.end; ++i) {
            if (ctx.query != nullptr) {
              AQUA_RETURN_IF_ERROR(ctx.query->CheckPoint());
              ctx.query->AddRows(1);
            }
            AQUA_RETURN_IF_ERROR(CheckItem(ctx, *items[i], in_set));
            RunItem(ctx, *items[i], m.worker, &slots[i]);
          }
          return Status::OK();
        }));

    // Per plan: first failing item (in item order) wins, exactly like the
    // serial loop; otherwise merge in item order (union of set children —
    // sub_select results are sets, and a single non-set input wraps the
    // same way in `FanOutOp`).
    for (size_t j = 0; j < n_plans; ++j) {
      Datum out = Datum::Set({});
      Status failed = Status::OK();
      for (size_t i = 0; i < items.size(); ++i) {
        if (!slots[i][j].ok()) {
          failed = slots[i][j].status();
          break;
        }
        for (const Datum& d : slots[i][j]->children()) out.SetInsert(d);
      }
      results_[j] = failed.ok() ? Result<Datum>(std::move(out))
                                : Result<Datum>(std::move(failed));
    }
    return Datum::Set({});  // placeholder; callers read plan_results()
  }

 private:
  Status CheckItem(ExecContext& ctx, const Datum& d, bool in_set) const {
    if (over_lists() ? !d.is_list() : !d.is_tree()) {
      return Status::TypeError(
          over_lists() ? (in_set ? kListSetErr : kListSingleErr)
                       : (in_set ? kTreeSetErr : kTreeSingleErr));
    }
    // One logical pattern evaluation per plan, so the counters mirror the
    // work the group replaced.
    (over_lists() ? ctx.lists_processed : ctx.trees_processed)
        .fetch_add(plans_.size(), std::memory_order_relaxed);
    return Status::OK();
  }
};

/// Batched list sub_select: the merged search automaton answers "does
/// pattern j match somewhere in this list" for all patterns in one columnar
/// scan. A hit runs the unchanged serial matcher (with the per-pattern
/// prefilter disabled — the batch probe already was that filter); a miss
/// produces the empty set, exactly what the serial prefilter-reject path
/// returns (anchors only narrow the unanchored body's language, so a
/// negative unanchored existence scan is sound — see `ListSubSelect`).
class BatchedListMatchOp : public BatchedMatchOpBase {
 public:
  using BatchedMatchOpBase::BatchedMatchOpBase;

  Status Prepare(ExecContext& ctx) override {
    AQUA_RETURN_IF_ERROR(BatchedPatternOp::Prepare(ctx));
    std::vector<ListPatternRef> bodies;
    bodies.reserve(plans_.size());
    for (const PlanRef& p : plans_) bodies.push_back(p->lpattern.body);
    auto multi = MultiNfa::CompileSearch(bodies);
    // A pattern the NFA cannot compile (tree atoms) disables the probe for
    // the whole group; every pattern then runs its matcher on every item,
    // which is what the serial path does without a prefilter.
    if (!multi.ok()) return Status::OK();
    multi_.emplace(std::move(*multi));
    size_t workers = std::max<size_t>(ctx.threads, 1);
    scratch_.emplace(workers);
    dfas_.emplace(workers);
    for (size_t s = 0; s < workers; ++s) {
      auto dfa = LazyMultiDfa::Make(&*multi_);
      if (dfa.ok()) dfas_->at(s).emplace(std::move(*dfa));
    }
    return Status::OK();
  }

 protected:
  bool over_lists() const override { return true; }

  void RunItem(ExecContext& ctx, const Datum& item, size_t worker,
               std::vector<Result<Datum>>* out) override {
    const List& list = item.list();
    uint64_t matched = ~0ULL;
    if (multi_.has_value()) {
      AlphabetScratch& scratch = scratch_->at(worker);
      std::optional<LazyMultiDfa>& dfa = dfas_->at(worker);
      matched = dfa.has_value() ? dfa->MatchAll(ctx.view, list, &scratch)
                                : multi_->MatchAll(ctx.view, list, &scratch);
    }
    for (size_t j = 0; j < plans_.size(); ++j) {
      if ((matched >> j) & 1) {
        (*out)[j] = ListSubSelectPrefiltered(ctx.view, list,
                                             plans_[j]->lpattern,
                                             plans_[j]->lsplit_opts,
                                             ListPrefilter{});
      } else {
        (*out)[j] = Datum::Set({});
      }
    }
  }

 private:
  std::optional<MultiNfa> multi_;
  std::optional<WorkerLocal<AlphabetScratch>> scratch_;
  std::optional<WorkerLocal<std::optional<LazyMultiDfa>>> dfas_;
};

/// One necessary condition on any match of a tree pattern: some node of
/// the tree must satisfy one of the predicates in `mask` (a disjunction
/// across `kAlt` arms of the pattern's possible match roots).
/// `unconstrained` disables the gate for that pattern (a `?` root, a free
/// point, a star, or a predicate beyond the 64-slot mask).
struct RootClause {
  bool unconstrained = false;
  uint64_t mask = 0;
};

/// Accumulates the match-root predicate disjunction of `tp` into `c`:
/// every way a match can start contributes either one alphabet slot or
/// `unconstrained`. Conservative — substitution at concatenation points
/// only ever replaces point leaves, so the root predicate of `first()` is
/// preserved by `∘_α`.
void CollectRootClause(const TreePattern& tp, PredicateAlphabet* alphabet,
                       RootClause* c) {
  switch (tp.kind()) {
    case TreePattern::Kind::kLeaf:
    case TreePattern::Kind::kNode: {
      if (tp.is_any()) {
        c->unconstrained = true;
        return;
      }
      uint32_t slot = alphabet->Intern(tp.pred());
      if (slot >= 64) {
        c->unconstrained = true;
        return;
      }
      c->mask |= 1ULL << slot;
      return;
    }
    case TreePattern::Kind::kAlt:
      for (const TreePatternRef& alt : tp.alts()) {
        CollectRootClause(*alt, alphabet, c);
      }
      return;
    case TreePattern::Kind::kConcatAt:
      CollectRootClause(*tp.first(), alphabet, c);
      return;
    case TreePattern::Kind::kPlusAt:
      CollectRootClause(*tp.inner(), alphabet, c);
      return;
    case TreePattern::Kind::kRootAnchor:
    case TreePattern::Kind::kLeafAnchor:
    case TreePattern::Kind::kPrune:
      CollectRootClause(*tp.inner(), alphabet, c);
      return;
    case TreePattern::Kind::kPoint:
    case TreePattern::Kind::kStarAt:
      // A free point can match nothing at all; a star can iterate zero
      // times. Neither pins a predicate on the match root.
      c->unconstrained = true;
      return;
  }
}

/// Batched tree sub_select: one columnar pass over each tree's cells
/// evaluates the group's shared root-predicate alphabet and accumulates a
/// seen-predicates mask; a pattern whose root clause intersects nothing in
/// the tree cannot match anywhere, so it skips its `TreeSubSelect` and
/// yields the empty set — byte-identical to the serial zero-match result.
class BatchedTreeMatchOp : public BatchedMatchOpBase {
 public:
  using BatchedMatchOpBase::BatchedMatchOpBase;

  Status Prepare(ExecContext& ctx) override {
    AQUA_RETURN_IF_ERROR(BatchedPatternOp::Prepare(ctx));
    clauses_.resize(plans_.size());
    for (size_t j = 0; j < plans_.size(); ++j) {
      if (plans_[j]->tpattern == nullptr) {
        clauses_[j].unconstrained = true;  // matcher reports the error
        continue;
      }
      CollectRootClause(*plans_[j]->tpattern, &alphabet_, &clauses_[j]);
      if (!clauses_[j].unconstrained) needed_ |= clauses_[j].mask;
    }
    alphabet_.Seal();
    gate_enabled_ = needed_ != 0 && alphabet_.size() <= 64;
    if (gate_enabled_) {
      scratch_.emplace(std::max<size_t>(ctx.threads, 1));
    }
    return Status::OK();
  }

 protected:
  bool over_lists() const override { return false; }

  void RunItem(ExecContext& ctx, const Datum& item, size_t worker,
               std::vector<Result<Datum>>* out) override {
    const Tree& tree = item.tree();
    uint64_t seen = 0;
    if (gate_enabled_) {
      AlphabetScratch& scratch = scratch_->at(worker);
      std::vector<NodeId> order = tree.Preorder();
      size_t rows = 0;
      constexpr size_t kChunk = 256;
      for (size_t base = 0;
           base < order.size() && (seen & needed_) != needed_;
           base += kChunk) {
        const size_t end = std::min(base + kChunk, order.size());
        scratch.oids.clear();
        for (size_t i = base; i < end; ++i) {
          const NodePayload& p = tree.payload(order[i]);
          if (p.is_cell()) scratch.oids.push_back(p.oid());
        }
        alphabet_.EvalBatch(ctx.view, scratch.oids.data(),
                            scratch.oids.size(), &scratch);
        rows += end - base;
        for (size_t i = 0; i < scratch.oids.size(); ++i) {
          seen |= scratch.sigs[i];  // stride 1: at most 64 slots
        }
      }
      if (rows > 0) AQUA_OBS_COUNT("exec.batch_scan_rows", rows);
    }
    for (size_t j = 0; j < plans_.size(); ++j) {
      // The clause is a disjunction over possible match roots: ruled out
      // only when no node in the tree satisfied any of its predicates.
      const bool ruled_out = gate_enabled_ && !clauses_[j].unconstrained &&
                             (clauses_[j].mask & seen) == 0;
      (*out)[j] = ruled_out
                      ? Result<Datum>(Datum::Set({}))
                      : TreeSubSelect(ctx.view, tree, plans_[j]->tpattern,
                                      plans_[j]->split_opts);
    }
  }

 private:
  PredicateAlphabet alphabet_;
  std::vector<RootClause> clauses_;
  uint64_t needed_ = 0;
  bool gate_enabled_ = false;
  std::optional<WorkerLocal<AlphabetScratch>> scratch_;
};

}  // namespace

std::shared_ptr<BatchedPatternOp> CompileBatch(
    const std::vector<PlanRef>& plans) {
  if (plans.size() < 2 || plans.size() > 64) return nullptr;
  const PlanRef& first = plans[0];
  if (first == nullptr || first->children.size() != 1) return nullptr;
  const PlanOp op = first->op;
  if (op != PlanOp::kListSubSelect && op != PlanOp::kTreeSubSelect) {
    return nullptr;
  }
  for (const PlanRef& p : plans) {
    if (p == nullptr || p->op != op || p->children.size() != 1) {
      return nullptr;
    }
    if (!PlanEquals(p->children[0], first->children[0])) return nullptr;
  }
  AQUA_OBS_COUNT("exec.batched_patterns", plans.size());
  std::vector<PhysicalOpRef> children;
  children.push_back(Compile(first->children[0]));
  if (op == PlanOp::kListSubSelect) {
    return std::make_shared<BatchedListMatchOp>(first, std::move(children),
                                                plans);
  }
  return std::make_shared<BatchedTreeMatchOp>(first, std::move(children),
                                              plans);
}

}  // namespace aqua::exec
