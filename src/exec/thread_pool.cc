#include "exec/thread_pool.h"

#include <cstdlib>
#include <string>

#include "obs/metrics.h"

namespace aqua::exec {

ThreadPool::ThreadPool(size_t workers) { EnsureWorkers(workers); }

ThreadPool::~ThreadPool() {
  std::vector<std::thread> joined;
  {
    MutexLock lock(mu_);
    stop_ = true;
    joined.swap(threads_);
  }
  cv_.NotifyAll();
  for (std::thread& t : joined) t.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool =
      new ThreadPool(DefaultThreads() > 0 ? DefaultThreads() - 1 : 0);
  return *pool;
}

size_t ThreadPool::DefaultThreads() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at init.
  const char* env = std::getenv("AQUA_THREADS");
  if (env != nullptr && *env != '\0') {
    long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<size_t>(n);
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

size_t ThreadPool::workers() const {
  MutexLock lock(mu_);
  return threads_.size();
}

size_t ThreadPool::pending() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::EnsureWorkers(size_t n) {
  MutexLock lock(mu_);
  while (threads_.size() < n) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    AQUA_OBS_GAUGE_SET("exec.pool_queue_depth",
                       static_cast<int64_t>(queue_.size()));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      AQUA_OBS_GAUGE_SET("exec.pool_queue_depth",
                         static_cast<int64_t>(queue_.size()));
    }
    AQUA_OBS_GAUGE_ADD("exec.pool_workers_active", 1);
    task();
    AQUA_OBS_GAUGE_ADD("exec.pool_workers_active", -1);
  }
}

}  // namespace aqua::exec
