#ifndef AQUA_EXEC_PHYSICAL_OP_H_
#define AQUA_EXEC_PHYSICAL_OP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "bulk/datum.h"
#include "exec/thread_pool.h"
#include "object/store_view.h"
#include "obs/query_context.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "query/database.h"
#include "query/plan.h"

namespace aqua::exec {

class PhysicalOp;
using PhysicalOpRef = std::shared_ptr<PhysicalOp>;

/// Everything one `Execute` call threads through the physical operator
/// tree: the database, the parallelism budget, the query trace, and the
/// cross-thread execution counters that back `Executor::stats()`.
///
/// The counter fields are atomics because fan-out items bump them from
/// worker threads; everything else is written by the query thread only.
struct ExecContext {
  Database* db = nullptr;
  ThreadPool* pool = nullptr;
  /// Maximum participants per fan-out, including the query thread itself.
  /// 1 reproduces the serial interpreter exactly.
  size_t threads = 1;
  obs::Trace* trace = nullptr;
  /// Lifecycle state of this Execute: cancellation/deadline checkpoints,
  /// resource counters, live progress. Null only in unit tests that drive
  /// ops directly; the executor always provides one.
  obs::QueryContext* query = nullptr;
  /// The snapshot every read path of this Execute evaluates against —
  /// opened once at the start (the executor installs it; `PhysicalOp::Run`
  /// also opens it lazily for tests that drive ops directly) and pinned for
  /// the query, so reads are lock-free regardless of concurrent commits.
  /// Operators that mutate the store re-snapshot after completing, so
  /// downstream operators observe their writes (read-after-write plan
  /// semantics). Written by the query thread only; fan-out workers read it
  /// after the fork point, never during a mutation.
  StoreView view;

  std::atomic<size_t> operators_evaluated{0};
  std::atomic<size_t> trees_processed{0};
  std::atomic<size_t> lists_processed{0};
  std::atomic<size_t> index_probes{0};
  std::atomic<size_t> index_candidates{0};

  // Parallel-path shape of this Execute, harvested by the executor for the
  // flight recorder: morsels executed across every fan-out, and the wall
  // time of the slowest single morsel (the skew highlight). Both stay 0 on
  // the serial path.
  std::atomic<size_t> morsels_run{0};
  std::atomic<uint64_t> morsel_max_ns{0};
};

/// One compiled operator of the physical execution pipeline.
///
/// `Compile` (see `exec/compile.h`) turns each `PlanNode` into one
/// PhysicalOp. The lifecycle per `Execute` is: `Prepare` once (recursive;
/// hoists per-query work such as pattern-automaton compilation out of the
/// per-item path), then `Run` evaluates the tree bottom-up. `Run` itself
/// always executes on the query thread — only per-item work inside a
/// fan-out operator is offloaded to pool workers — so the query trace can
/// be written without locks.
///
/// Each op carries its own measurement atomics (invocations, total time,
/// last output cardinality); the executor facade harvests them after the
/// run to build EXPLAIN ANALYZE. Ops are compiled fresh per `Execute`, so
/// the measurements are per-call by construction.
class PhysicalOp {
 public:
  PhysicalOp(PlanRef plan, std::vector<PhysicalOpRef> children)
      : plan_(std::move(plan)), children_(std::move(children)) {}
  virtual ~PhysicalOp() = default;
  PhysicalOp(const PhysicalOp&) = delete;
  PhysicalOp& operator=(const PhysicalOp&) = delete;

  /// The logical node this op was compiled from (null for the error op
  /// that stands in for a null plan).
  const PlanNode* plan() const { return plan_.get(); }
  const std::vector<PhysicalOpRef>& children() const { return children_; }

  /// Per-query preparation, recursive over children. Overrides hoist work
  /// that the interpreter re-did per item (e.g. compiling the search NFA
  /// of a list sub_select) so it runs once per Execute.
  virtual Status Prepare(ExecContext& ctx);

  /// Evaluates the operator: opens its trace span, dispatches to
  /// `RunImpl`, and records the per-op measurements.
  Result<Datum> Run(ExecContext& ctx);

  /// Measurements of this Execute (see class comment).
  size_t invocations() const {
    return invocations_.load(std::memory_order_relaxed);
  }
  double total_ms() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
           1e6;
  }
  size_t last_output_size() const {
    return last_output_size_.load(std::memory_order_relaxed);
  }
  /// Query-thread CPU attributed to this op's `Run` (fan-out helper work
  /// is accounted to the query total, not per-op).
  double cpu_ms() const {
    return static_cast<double>(cpu_ns_.load(std::memory_order_relaxed)) / 1e6;
  }
  /// Estimated bytes of the last output still charged to the query
  /// (released when a parent op consumes it).
  size_t out_bytes() const {
    return out_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  uint64_t cpu_ns() const { return cpu_ns_.load(std::memory_order_relaxed); }
  /// Observed input cardinality of the last call: the children's combined
  /// outputs; for an index probe the candidate count; for a source leaf
  /// its own output (the rows it materialized).
  size_t in_rows() const { return in_rows_.load(std::memory_order_relaxed); }
  /// Index probes issued / candidates returned during this op's `Run`
  /// (indexed ops only — 0 elsewhere; exact because `Run` is serial on the
  /// query thread, so the ExecContext counter delta belongs to this op).
  size_t probes() const { return probes_.load(std::memory_order_relaxed); }
  size_t candidates() const {
    return candidates_.load(std::memory_order_relaxed);
  }

  /// The logical subplan this op was compiled from, shared form — what
  /// `obs::FingerprintPlan` keys the stats warehouse with.
  const PlanRef& plan_ref() const { return plan_; }

 protected:
  virtual Result<Datum> RunImpl(ExecContext& ctx) = 0;

  /// Runs input `i`, failing like the interpreter when the plan node lacks
  /// that input.
  Result<Datum> RunChild(size_t i, ExecContext& ctx);

  PlanRef plan_;
  std::vector<PhysicalOpRef> children_;

 private:
  std::atomic<size_t> invocations_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<size_t> last_output_size_{0};
  std::atomic<uint64_t> cpu_ns_{0};
  std::atomic<uint64_t> out_bytes_{0};
  std::atomic<size_t> in_rows_{0};
  std::atomic<size_t> probes_{0};
  std::atomic<size_t> candidates_{0};
};

/// Rough heap footprint of a datum (node/element payloads plus container
/// overhead) — the arena-level estimate behind per-query memory
/// accounting. O(size of the datum).
size_t ApproxDatumBytes(const Datum& d);

/// The post-run harvest walk: flattens the executed op tree into
/// `obs::OpSample`s for `StatsWarehouse::Harvest`, preorder, with stable
/// child-index paths ("0", "0.0", "0.1", ...). Ops that never ran
/// (short-circuited branches) are skipped. `node_fp` is
/// `obs::FingerprintPlan` of each op's subplan.
void CollectOpSamples(const PhysicalOpRef& root,
                      std::vector<obs::OpSample>* out);

}  // namespace aqua::exec

#endif  // AQUA_EXEC_PHYSICAL_OP_H_
