#include "exec/morsel.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "obs/recorder.h"

namespace aqua::exec {

std::vector<std::pair<size_t, size_t>> PartitionMorsels(size_t n,
                                                        size_t threads,
                                                        size_t min_items) {
  std::vector<std::pair<size_t, size_t>> out;
  if (n == 0) return out;
  if (threads < 1) threads = 1;
  if (min_items < 1) min_items = 1;
  // ~4 waves per participant leaves the claim loop slack to absorb skewed
  // per-item costs without a work-stealing deque.
  size_t target = threads * 4;
  size_t grain = (n + target - 1) / target;
  if (grain < min_items) grain = min_items;
  for (size_t begin = 0; begin < n; begin += grain) {
    out.emplace_back(begin, std::min(n, begin + grain));
  }
  return out;
}

namespace {

/// State shared between the caller and its helper tasks. Held by
/// shared_ptr so a straggler helper that wakes after the join only touches
/// memory that is still alive (it can no longer claim a morsel).
struct FanState {
  std::vector<std::pair<size_t, size_t>> ranges;
  const std::function<Status(const Morsel&)>* fn = nullptr;
  size_t participants = 1;
  bool tracing = false;
  std::vector<std::unique_ptr<obs::Trace>> buffers;  // one per morsel
  std::atomic<size_t>* morsels_run = nullptr;        // optional sinks
  std::atomic<uint64_t>* morsel_max_ns = nullptr;
  obs::QueryContext* query = nullptr;

  std::atomic<size_t> next{0};        // claim cursor
  std::atomic<size_t> unfinished{0};  // claimed-but-unfinished + unclaimed
  std::atomic<size_t> err_morsel{static_cast<size_t>(-1)};  // skip fast-path

  std::mutex mu;
  std::condition_variable cv;
  Status err = Status::OK();  // guarded by mu; morsel of lowest index wins
  size_t err_morsel_locked = static_cast<size_t>(-1);
};

void Drain(const std::shared_ptr<FanState>& state, size_t slot) {
  // Helpers install the query context so matcher checkpoints (cancellation,
  // deadline, memory) fire on pool threads too; slot 0 runs on the query
  // thread where the executor's own Scope is already active, but installing
  // again is a harmless no-op nest. Helper CPU is accounted here; the query
  // thread's total (which covers its Drain share) is measured by the
  // executor, so nothing is counted twice.
  obs::QueryContext::Scope qscope(state->query);
  uint64_t cpu0 = slot != 0 && state->query != nullptr
                      ? obs::QueryContext::ThreadCpuNs()
                      : 0;
  for (;;) {
    size_t m = state->next.fetch_add(1, std::memory_order_relaxed);
    if (m >= state->ranges.size()) break;
    if (m < state->err_morsel.load(std::memory_order_acquire)) {
      obs::Trace* buf = state->tracing ? state->buffers[m].get() : nullptr;
      Morsel morsel{m, state->ranges[m].first, state->ranges[m].second, slot,
                    buf};
      Status st = Status::OK();
      {
        obs::Span span(buf, "Morsel");
        span.AddAttr("begin", static_cast<int64_t>(morsel.begin));
        span.AddAttr("items", static_cast<int64_t>(morsel.end - morsel.begin));
        span.AddAttr("worker", static_cast<int64_t>(slot));
        st = (*state->fn)(morsel);
        AQUA_OBS_COUNT("exec.tasks_run", 1);
        if (slot != m % state->participants) {
          AQUA_OBS_COUNT("exec.steal_count", 1);
        }
        uint64_t morsel_ns = span.ElapsedNs();
        AQUA_OBS_RECORD("exec.morsel_ms",
                        static_cast<uint64_t>(morsel_ns / 1000000));
        if (state->morsels_run != nullptr) {
          state->morsels_run->fetch_add(1, std::memory_order_relaxed);
        }
        if (state->morsel_max_ns != nullptr) {
          uint64_t prev =
              state->morsel_max_ns->load(std::memory_order_relaxed);
          while (prev < morsel_ns &&
                 !state->morsel_max_ns->compare_exchange_weak(
                     prev, morsel_ns, std::memory_order_relaxed)) {
          }
        }
#ifndef AQUA_OBS_DISABLED
        if (obs::Registry::enabled()) {
          obs::FlightEvent ev;
          ev.kind = static_cast<uint32_t>(obs::FlightEventKind::kMorsel);
          ev.ok = st.ok() ? 1 : 0;
          ev.wall_ns = morsel_ns;
          ev.threads = static_cast<uint32_t>(slot);
          ev.morsels = static_cast<uint32_t>(morsel.end - morsel.begin);
          obs::FlightRecorder::Global().Record(ev);
        }
#endif
      }
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (m < state->err_morsel_locked) {
          state->err_morsel_locked = m;
          state->err = std::move(st);
          state->err_morsel.store(m, std::memory_order_release);
        }
      }
    }
    if (state->query != nullptr) {
      state->query->AddMorselsDone(1);
      // Helper CPU must be flushed while this morsel's `unfinished` credit
      // is still held: the moment the last credit drops, the caller's join
      // returns and the query context (stack-allocated in Execute) dies.
      // A straggler touching it after its final decrement is a
      // use-after-return — so never touch `state->query` past that point.
      if (slot != 0) {
        uint64_t now = obs::QueryContext::ThreadCpuNs();
        state->query->AddCpuNs(now - cpu0);
        cpu0 = now;
      }
    }
    if (state->unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->cv.notify_all();
    }
  }
}

}  // namespace

Status RunMorsels(ThreadPool& pool, size_t n, const FanOutOptions& opts,
                  const std::function<Status(const Morsel&)>& fn) {
  std::vector<std::pair<size_t, size_t>> ranges =
      PartitionMorsels(n, opts.threads, opts.min_items_per_morsel);
  if (ranges.empty()) return Status::OK();

  // Serial path: inline, in order, early exit — the pre-pipeline semantics
  // (`AQUA_THREADS=1`), byte-identical including the absence of morsel
  // spans and morsel metrics.
  if (opts.query != nullptr) opts.query->AddMorselsTotal(ranges.size());
  if (opts.threads <= 1 || ranges.size() <= 1) {
    for (size_t m = 0; m < ranges.size(); ++m) {
      Morsel morsel{m, ranges[m].first, ranges[m].second, 0, nullptr};
      AQUA_RETURN_IF_ERROR(fn(morsel));
      if (opts.query != nullptr) opts.query->AddMorselsDone(1);
    }
    return Status::OK();
  }

  auto state = std::make_shared<FanState>();
  state->ranges = std::move(ranges);
  state->fn = &fn;
  state->participants = std::min(opts.threads, state->ranges.size());
  state->tracing = opts.trace != nullptr && opts.trace->enabled();
  state->morsels_run = opts.morsels_run;
  state->morsel_max_ns = opts.morsel_max_ns;
  state->query = opts.query;
  state->unfinished.store(state->ranges.size(), std::memory_order_relaxed);
  if (state->tracing) {
    state->buffers.resize(state->ranges.size());
    for (auto& buf : state->buffers) {
      buf = std::make_unique<obs::Trace>();
      buf->set_enabled(true);
    }
  }

  pool.EnsureWorkers(state->participants - 1);
  for (size_t slot = 1; slot < state->participants; ++slot) {
    pool.Submit([state, slot] { Drain(state, slot); });
  }
  Drain(state, 0);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->unfinished.load(std::memory_order_acquire) == 0;
    });
  }

  // Stitch per-morsel span buffers into the query trace in morsel order:
  // the stitched tree's *structure* is deterministic even though timings
  // and worker attribution vary run to run.
  if (state->tracing) {
    for (const auto& buf : state->buffers) opts.trace->Splice(*buf);
  }

  std::lock_guard<std::mutex> lock(state->mu);
  return state->err;
}

}  // namespace aqua::exec
