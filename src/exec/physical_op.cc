#include "exec/physical_op.h"

#include <string>

#include "obs/metrics.h"

namespace aqua::exec {

namespace {

size_t DatumCardinality(const Datum& d) {
  switch (d.kind()) {
    case Datum::Kind::kSet:
    case Datum::Kind::kTuple:
      return d.size();
    case Datum::Kind::kTree:
      return d.tree().size();
    case Datum::Kind::kList:
      return d.list().size();
    default:
      return 1;
  }
}

}  // namespace

size_t ApproxDatumBytes(const Datum& d) {
  // Per-node / per-element constants approximate the payload cell plus the
  // containers' bookkeeping; exactness does not matter — the estimate only
  // needs to scale with materialized data so peaks and limits are honest.
  constexpr size_t kTreeNodeBytes = 48;   // payload + child vector slot
  constexpr size_t kListElemBytes = 24;   // payload cell
  constexpr size_t kDatumBytes = 64;      // Datum shell + shared_ptr blocks
  switch (d.kind()) {
    case Datum::Kind::kTree:
      return kDatumBytes + d.tree().size() * kTreeNodeBytes;
    case Datum::Kind::kList:
      return kDatumBytes + d.list().size() * kListElemBytes;
    case Datum::Kind::kSet:
    case Datum::Kind::kTuple: {
      size_t total = kDatumBytes;
      for (const Datum& c : d.children()) total += ApproxDatumBytes(c);
      return total;
    }
    default:
      return kDatumBytes;
  }
}

Status PhysicalOp::Prepare(ExecContext& ctx) {
  for (const PhysicalOpRef& child : children_) {
    AQUA_RETURN_IF_ERROR(child->Prepare(ctx));
  }
  return Status::OK();
}

Result<Datum> PhysicalOp::Run(ExecContext& ctx) {
  // Lazy snapshot for contexts built without one (op-level unit tests).
  // Run always executes on the query thread, so this cannot race a worker.
  if (!ctx.view.valid() && ctx.db != nullptr) ctx.view = ctx.db->store();
  obs::Span span(ctx.trace,
                 plan_ == nullptr ? "(null)" : PlanOpToString(plan_->op));
  if (plan_ != nullptr) {
    ctx.operators_evaluated.fetch_add(1, std::memory_order_relaxed);
    if (ctx.query != nullptr) {
      ctx.query->set_current_op(PlanOpToString(plan_->op));
    }
  }
  uint64_t cpu0 =
      ctx.query != nullptr ? obs::QueryContext::ThreadCpuNs() : 0;
  Result<Datum> result = RunImpl(ctx);
  uint64_t ns = span.ElapsedNs();
  AQUA_OBS_RECORD("exec.operator_ns", ns);
  if (plan_ != nullptr) {
    invocations_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    if (ctx.query != nullptr) {
      cpu_ns_.fetch_add(obs::QueryContext::ThreadCpuNs() - cpu0,
                        std::memory_order_relaxed);
    }
    if (result.ok()) {
      size_t out = DatumCardinality(*result);
      last_output_size_.store(out, std::memory_order_relaxed);
      span.AddAttr("out", static_cast<int64_t>(out));
      if (ctx.query != nullptr) {
        // Charge this op's materialized output and release the children's:
        // their results were just consumed to produce ours, so the live
        // estimate tracks the high-water of operator outputs in flight.
        size_t bytes = ApproxDatumBytes(*result);
        out_bytes_.store(bytes, std::memory_order_relaxed);
        ctx.query->AddMem(static_cast<int64_t>(bytes));
        for (const PhysicalOpRef& child : children_) {
          uint64_t freed =
              child->out_bytes_.exchange(0, std::memory_order_relaxed);
          if (freed != 0) ctx.query->AddMem(-static_cast<int64_t>(freed));
        }
      }
    }
  }
  return result;
}

Result<Datum> PhysicalOp::RunChild(size_t i, ExecContext& ctx) {
  if (i >= children_.size()) {
    return Status::Internal("plan node missing input " + std::to_string(i));
  }
  return children_[i]->Run(ctx);
}

}  // namespace aqua::exec
