#include "exec/physical_op.h"

#include <string>

#include "obs/metrics.h"

namespace aqua::exec {

namespace {

size_t DatumCardinality(const Datum& d) {
  switch (d.kind()) {
    case Datum::Kind::kSet:
    case Datum::Kind::kTuple:
      return d.size();
    case Datum::Kind::kTree:
      return d.tree().size();
    case Datum::Kind::kList:
      return d.list().size();
    default:
      return 1;
  }
}

}  // namespace

Status PhysicalOp::Prepare(ExecContext& ctx) {
  for (const PhysicalOpRef& child : children_) {
    AQUA_RETURN_IF_ERROR(child->Prepare(ctx));
  }
  return Status::OK();
}

Result<Datum> PhysicalOp::Run(ExecContext& ctx) {
  obs::Span span(ctx.trace,
                 plan_ == nullptr ? "(null)" : PlanOpToString(plan_->op));
  if (plan_ != nullptr) {
    ctx.operators_evaluated.fetch_add(1, std::memory_order_relaxed);
  }
  Result<Datum> result = RunImpl(ctx);
  uint64_t ns = span.ElapsedNs();
  AQUA_OBS_RECORD("exec.operator_ns", ns);
  if (plan_ != nullptr) {
    invocations_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    if (result.ok()) {
      size_t out = DatumCardinality(*result);
      last_output_size_.store(out, std::memory_order_relaxed);
      span.AddAttr("out", static_cast<int64_t>(out));
    }
  }
  return result;
}

Result<Datum> PhysicalOp::RunChild(size_t i, ExecContext& ctx) {
  if (i >= children_.size()) {
    return Status::Internal("plan node missing input " + std::to_string(i));
  }
  return children_[i]->Run(ctx);
}

}  // namespace aqua::exec
