#include "exec/physical_op.h"

#include <string>

#include "obs/digest.h"
#include "obs/metrics.h"

namespace aqua::exec {

namespace {

size_t DatumCardinality(const Datum& d) {
  switch (d.kind()) {
    case Datum::Kind::kSet:
    case Datum::Kind::kTuple:
      return d.size();
    case Datum::Kind::kTree:
      return d.tree().size();
    case Datum::Kind::kList:
      return d.list().size();
    default:
      return 1;
  }
}

}  // namespace

size_t ApproxDatumBytes(const Datum& d) {
  // Per-node / per-element constants approximate the payload cell plus the
  // containers' bookkeeping; exactness does not matter — the estimate only
  // needs to scale with materialized data so peaks and limits are honest.
  constexpr size_t kTreeNodeBytes = 48;   // payload + child vector slot
  constexpr size_t kListElemBytes = 24;   // payload cell
  constexpr size_t kDatumBytes = 64;      // Datum shell + shared_ptr blocks
  switch (d.kind()) {
    case Datum::Kind::kTree:
      return kDatumBytes + d.tree().size() * kTreeNodeBytes;
    case Datum::Kind::kList:
      return kDatumBytes + d.list().size() * kListElemBytes;
    case Datum::Kind::kSet:
    case Datum::Kind::kTuple: {
      size_t total = kDatumBytes;
      for (const Datum& c : d.children()) total += ApproxDatumBytes(c);
      return total;
    }
    default:
      return kDatumBytes;
  }
}

Status PhysicalOp::Prepare(ExecContext& ctx) {
  for (const PhysicalOpRef& child : children_) {
    AQUA_RETURN_IF_ERROR(child->Prepare(ctx));
  }
  return Status::OK();
}

Result<Datum> PhysicalOp::Run(ExecContext& ctx) {
  // Lazy snapshot for contexts built without one (op-level unit tests).
  // Run always executes on the query thread, so this cannot race a worker.
  if (!ctx.view.valid() && ctx.db != nullptr) ctx.view = ctx.db->store();
  obs::Span span(ctx.trace,
                 plan_ == nullptr ? "(null)" : PlanOpToString(plan_->op));
  if (plan_ != nullptr) {
    ctx.operators_evaluated.fetch_add(1, std::memory_order_relaxed);
    if (ctx.query != nullptr) {
      ctx.query->set_current_op(PlanOpToString(plan_->op));
    }
  }
  uint64_t cpu0 =
      ctx.query != nullptr ? obs::QueryContext::ThreadCpuNs() : 0;
  // `Run` is serial on the query thread (only fan-out *items* go to
  // workers), so the probe-counter delta around RunImpl is exactly this
  // op's — the basis for the per-op candidates-per-probe statistic.
  size_t probes0 = ctx.index_probes.load(std::memory_order_relaxed);
  size_t cands0 = ctx.index_candidates.load(std::memory_order_relaxed);
  Result<Datum> result = RunImpl(ctx);
  uint64_t ns = span.ElapsedNs();
  AQUA_OBS_RECORD("exec.operator_ns", ns);
  if (plan_ != nullptr) {
    invocations_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    if (ctx.query != nullptr) {
      cpu_ns_.fetch_add(obs::QueryContext::ThreadCpuNs() - cpu0,
                        std::memory_order_relaxed);
    }
    if (result.ok()) {
      size_t out = DatumCardinality(*result);
      last_output_size_.store(out, std::memory_order_relaxed);
      span.AddAttr("out", static_cast<int64_t>(out));
      bool indexed = plan_->op == PlanOp::kIndexedSubSelect ||
                     plan_->op == PlanOp::kIndexedListSubSelect;
      size_t dprobes =
          ctx.index_probes.load(std::memory_order_relaxed) - probes0;
      size_t dcands =
          ctx.index_candidates.load(std::memory_order_relaxed) - cands0;
      if (indexed) {
        probes_.fetch_add(dprobes, std::memory_order_relaxed);
        candidates_.fetch_add(dcands, std::memory_order_relaxed);
      }
      // Observed input cardinality: what this op actually consumed. With
      // inputs it is their combined outputs; an index probe consumes its
      // candidate set; a source leaf "consumes" what it materialized
      // (selectivity 1 by definition).
      size_t in = 0;
      if (!children_.empty()) {
        for (const PhysicalOpRef& child : children_) {
          in += child->last_output_size();
        }
      } else if (indexed) {
        in = dcands;
      } else {
        in = out;
      }
      in_rows_.store(in, std::memory_order_relaxed);
      if (ctx.query != nullptr) {
        // Charge this op's materialized output and release the children's:
        // their results were just consumed to produce ours, so the live
        // estimate tracks the high-water of operator outputs in flight.
        size_t bytes = ApproxDatumBytes(*result);
        out_bytes_.store(bytes, std::memory_order_relaxed);
        ctx.query->AddMem(static_cast<int64_t>(bytes));
        for (const PhysicalOpRef& child : children_) {
          uint64_t freed =
              child->out_bytes_.exchange(0, std::memory_order_relaxed);
          if (freed != 0) ctx.query->AddMem(-static_cast<int64_t>(freed));
        }
      }
    }
  }
  return result;
}

Result<Datum> PhysicalOp::RunChild(size_t i, ExecContext& ctx) {
  if (i >= children_.size()) {
    return Status::Internal("plan node missing input " + std::to_string(i));
  }
  return children_[i]->Run(ctx);
}

namespace {

void CollectOpSamplesInto(const PhysicalOpRef& op, const std::string& path,
                          std::vector<obs::OpSample>* out) {
  if (op == nullptr) return;
  if (op->plan() != nullptr && op->invocations() > 0) {
    obs::OpSample s;
    s.op_name = PlanOpToString(op->plan()->op);
    s.path = path;
    s.node_fp = obs::FingerprintPlan(op->plan_ref());
    s.calls = op->invocations();
    s.in_rows = op->in_rows();
    s.out_rows = op->last_output_size();
    s.wall_ns = op->total_ns();
    s.cpu_ns = op->cpu_ns();
    s.probes = op->probes();
    s.candidates = op->candidates();
    out->push_back(std::move(s));
  }
  for (size_t i = 0; i < op->children().size(); ++i) {
    CollectOpSamplesInto(op->children()[i], path + "." + std::to_string(i),
                         out);
  }
}

}  // namespace

void CollectOpSamples(const PhysicalOpRef& root,
                      std::vector<obs::OpSample>* out) {
  CollectOpSamplesInto(root, "0", out);
}

}  // namespace aqua::exec
