#ifndef AQUA_EXEC_MORSEL_H_
#define AQUA_EXEC_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"
#include "obs/query_context.h"
#include "obs/trace.h"

namespace aqua::exec {

/// One contiguous range of fan-out items executed as a unit by one worker.
struct Morsel {
  size_t index = 0;   ///< position in the morsel sequence (deterministic)
  size_t begin = 0;   ///< first item (inclusive)
  size_t end = 0;     ///< one past the last item
  size_t worker = 0;  ///< worker slot running it (0 = the calling thread)
  /// Per-morsel span buffer, stitched into the query trace in morsel order
  /// after the fan-out joins; null when tracing is off or running inline.
  obs::Trace* trace = nullptr;
};

/// Controls one fan-out (see `RunMorsels`).
struct FanOutOptions {
  /// Maximum participants, including the calling thread. 1 runs inline on
  /// the caller with serial semantics (early exit on the first error, no
  /// morsel spans or morsel metrics) — exactly the pre-pipeline behavior.
  size_t threads = 1;
  /// Lower bound on items per morsel (amortizes scheduling for tiny items).
  size_t min_items_per_morsel = 1;
  /// Query trace to stitch per-morsel span buffers into (may be null).
  obs::Trace* trace = nullptr;
  /// Optional per-Execute sinks (see ExecContext): executed-morsel count and
  /// a running maximum of single-morsel wall ns. Only the parallel path
  /// updates them — the serial path stays metric-free by design.
  std::atomic<size_t>* morsels_run = nullptr;
  std::atomic<uint64_t>* morsel_max_ns = nullptr;
  /// Query lifecycle context (may be null). When set, both paths report
  /// morsel progress (`AddMorselsTotal` / `AddMorselsDone`), every helper
  /// installs it thread-locally for the matcher checkpoints, and helper
  /// thread CPU is accounted to the query (the calling thread's CPU is
  /// measured once, by the executor).
  obs::QueryContext* query = nullptr;
};

/// Deterministic partition of `[0, n)` into contiguous morsels: aims for
/// ~4 morsels per participant (so the claim loop can balance skew) but
/// never fewer than `min_items` items per morsel.
std::vector<std::pair<size_t, size_t>> PartitionMorsels(size_t n,
                                                        size_t threads,
                                                        size_t min_items);

/// Runs `fn` once per morsel. Order-stable by construction: morsel index
/// order is the item order, and the caller merges per-item results in that
/// order after the join, so parallel output is byte-identical to serial.
///
/// Error semantics match a serial in-order loop: the returned Status is the
/// one of the *lowest-indexed* failing morsel (later morsels may be skipped
/// once a failure is known; earlier ones always run).
///
/// Scheduling is work-sharing: participants claim the next unclaimed morsel
/// from a shared cursor. Each participant holds a distinct worker slot
/// (caller = 0) for `WorkerLocal` state. Per executed morsel the registry
/// gets `exec.tasks_run` (+`exec.steal_count` when a morsel ran on a slot
/// other than `index % participants`) and an `exec.morsel_ms` sample; a
/// kMorsel event goes to the flight recorder and the `FanOutOptions` sinks
/// (morsel count, max single-morsel ns) are updated when provided.
Status RunMorsels(ThreadPool& pool, size_t n, const FanOutOptions& opts,
                  const std::function<Status(const Morsel&)>& fn);

}  // namespace aqua::exec

#endif  // AQUA_EXEC_MORSEL_H_
