#ifndef AQUA_EXEC_WORKER_LOCAL_H_
#define AQUA_EXEC_WORKER_LOCAL_H_

#include <cstddef>
#include <deque>

namespace aqua::exec {

/// Per-worker-slot storage for a parallel section.
///
/// A fan-out (see `morsel.h`) hands every participant a *worker slot*:
/// slot 0 is the calling thread, slots 1..n-1 are helper tasks. At most one
/// participant owns a slot at a time, so `at(slot)` needs no locking — this
/// is how per-worker state (e.g. a lazily determinized DFA cache) is shared
/// across the morsels one worker runs without any cross-thread
/// synchronization. Slots are cache-line padded against false sharing.
template <typename T>
class WorkerLocal {
 public:
  explicit WorkerLocal(size_t slots) : slots_(slots) {}

  size_t size() const { return slots_.size(); }

  T& at(size_t slot) { return slots_[slot].value; }

 private:
  struct alignas(64) Padded {
    T value{};
  };
  std::deque<Padded> slots_;
};

}  // namespace aqua::exec

#endif  // AQUA_EXEC_WORKER_LOCAL_H_
