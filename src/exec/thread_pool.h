#ifndef AQUA_EXEC_THREAD_POOL_H_
#define AQUA_EXEC_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aqua::exec {

/// A shared FIFO task pool backing morsel-parallel query execution.
///
/// The pool holds *helper* threads only: a parallel section is always driven
/// by its calling thread, which participates in the work and blocks until
/// its own morsels are done (see `morsel.h`). Helpers therefore never spawn
/// pool work themselves, so the pool cannot deadlock on nested fan-outs —
/// a caller that gets no helpers simply runs everything inline.
///
/// Sizing: `DefaultThreads()` reads `AQUA_THREADS` (clamped to >= 1) and
/// falls back to the hardware concurrency. One process-wide instance is
/// shared via `Shared()`; it grows on demand (`EnsureWorkers`) and never
/// shrinks, so worker threads are started at most once per size increase.
class ThreadPool {
 public:
  /// Starts `workers` helper threads (0 is a valid, thread-free pool).
  explicit ThreadPool(size_t workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, initially sized for `DefaultThreads()`.
  static ThreadPool& Shared();

  /// `AQUA_THREADS` when set and positive, else `hardware_concurrency`
  /// (at least 1). This is the default parallelism of every `Executor`.
  static size_t DefaultThreads();

  /// Helper threads currently running.
  size_t workers() const AQUA_EXCLUDES(mu_);

  /// Tasks queued but not yet picked up by a worker. Cancellation tests
  /// assert this drains to 0 — a cancelled fan-out must not leave orphan
  /// tasks behind.
  size_t pending() const AQUA_EXCLUDES(mu_);

  /// Grows the pool to at least `n` helper threads.
  void EnsureWorkers(size_t n) AQUA_EXCLUDES(mu_);

  /// Enqueues a task. Tasks must not block on other pool tasks.
  void Submit(std::function<void()> task) AQUA_EXCLUDES(mu_);

 private:
  void WorkerLoop() AQUA_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ AQUA_GUARDED_BY(mu_);
  std::vector<std::thread> threads_ AQUA_GUARDED_BY(mu_);
  bool stop_ AQUA_GUARDED_BY(mu_) = false;
};

}  // namespace aqua::exec

#endif  // AQUA_EXEC_THREAD_POOL_H_
