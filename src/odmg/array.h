#ifndef AQUA_ODMG_ARRAY_H_
#define AQUA_ODMG_ARRAY_H_

#include <vector>

#include "common/result.h"
#include "algebra/list_ops.h"
#include "bulk/datum.h"
#include "bulk/list.h"
#include "object/object_store.h"
#include "pattern/list_pattern.h"
#include "pattern/predicate.h"

namespace aqua {

/// An ODMG-93 `Array<T>` simulated over an AQUA list (§8: "The array type
/// in the ODMG specification is similar to our notion of list, and we
/// believe that we will have little difficulty simulating the ODMG arrays
/// with AQUA lists. Our view of predicates, however, is significantly more
/// powerful.").
///
/// The ODMG collection interface (element access, insertion, removal,
/// concatenation) is implemented by list edits; the AQUA side shows
/// through in `Select` (stable filtering) and `SubSelect` (the
/// pattern-predicate upgrade the paper advertises). Positions are 0-based,
/// matching the ODMG C++ binding.
class OdmgArray {
 public:
  OdmgArray() = default;
  explicit OdmgArray(List list) : list_(std::move(list)) {}

  /// Builds an array of object references.
  static OdmgArray Of(const std::vector<Oid>& elements);

  size_t cardinality() const { return list_.size(); }
  bool is_empty() const { return list_.empty(); }

  /// ODMG retrieve_element_at.
  Result<Oid> RetrieveAt(size_t index) const;
  /// ODMG replace_element_at.
  Status ReplaceAt(size_t index, Oid element);
  /// ODMG insert_element_at (shifts the suffix right).
  Status InsertAt(size_t index, Oid element);
  /// ODMG remove_element_at (shifts the suffix left).
  Status RemoveAt(size_t index);
  /// Appends at the end.
  void Append(Oid element);

  /// First position of `element` at or after `from`; NotFound otherwise.
  Result<size_t> IndexOf(Oid element, size_t from = 0) const;
  bool Contains(Oid element) const { return IndexOf(element).ok(); }

  /// ODMG concatenation: this array followed by `other`.
  OdmgArray Concat(const OdmgArray& other) const;

  /// The AQUA list this array is simulated by (the §8 mapping).
  const List& aqua_list() const { return list_; }

  /// AQUA-stable select: keeps order, filters by an alphabet-predicate.
  Result<OdmgArray> Select(const StoreView& store,
                           const PredicateRef& pred) const;

  /// The predicate upgrade §8 advertises: AQUA list patterns over an ODMG
  /// array (returns the set of matching subarrays).
  Result<Datum> SubSelect(const StoreView& store,
                          const AnchoredListPattern& pattern) const;

  friend bool operator==(const OdmgArray& a, const OdmgArray& b) {
    return a.list_ == b.list_;
  }

 private:
  List list_;
};

}  // namespace aqua

#endif  // AQUA_ODMG_ARRAY_H_
