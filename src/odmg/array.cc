#include "odmg/array.h"

#include "algebra/structural.h"
#include "bulk/concat.h"

namespace aqua {

OdmgArray OdmgArray::Of(const std::vector<Oid>& elements) {
  return OdmgArray(List::OfOids(elements));
}

Result<Oid> OdmgArray::RetrieveAt(size_t index) const {
  if (index >= list_.size()) {
    return Status::OutOfRange("array index " + std::to_string(index) +
                              " out of range");
  }
  const NodePayload& p = list_.at(index);
  if (!p.is_cell()) {
    return Status::TypeError("array position holds a concatenation point");
  }
  return p.oid();
}

Status OdmgArray::ReplaceAt(size_t index, Oid element) {
  AQUA_ASSIGN_OR_RETURN(List updated,
                        ListReplace(list_, index, NodePayload::Cell(element)));
  list_ = std::move(updated);
  return Status::OK();
}

Status OdmgArray::InsertAt(size_t index, Oid element) {
  AQUA_ASSIGN_OR_RETURN(List updated,
                        ListInsert(list_, index, NodePayload::Cell(element)));
  list_ = std::move(updated);
  return Status::OK();
}

Status OdmgArray::RemoveAt(size_t index) {
  AQUA_ASSIGN_OR_RETURN(List updated, ListDelete(list_, index));
  list_ = std::move(updated);
  return Status::OK();
}

void OdmgArray::Append(Oid element) {
  list_.Append(NodePayload::Cell(element));
}

Result<size_t> OdmgArray::IndexOf(Oid element, size_t from) const {
  for (size_t i = from; i < list_.size(); ++i) {
    if (list_.at(i).is_cell() && list_.at(i).oid() == element) return i;
  }
  return Status::NotFound("element not in array");
}

OdmgArray OdmgArray::Concat(const OdmgArray& other) const {
  return OdmgArray(aqua::Concat(list_, other.list_));
}

Result<OdmgArray> OdmgArray::Select(const StoreView& store,
                                    const PredicateRef& pred) const {
  AQUA_ASSIGN_OR_RETURN(List filtered, ListSelect(store, list_, pred));
  return OdmgArray(std::move(filtered));
}

Result<Datum> OdmgArray::SubSelect(const StoreView& store,
                                   const AnchoredListPattern& pattern) const {
  return ListSubSelect(store, list_, pattern);
}

}  // namespace aqua
