#ifndef AQUA_ALGEBRA_DERIVED_H_
#define AQUA_ALGEBRA_DERIVED_H_

#include "common/result.h"
#include "algebra/list_ops.h"
#include "algebra/tree_ops.h"
#include "index/attribute_index.h"

namespace aqua {

// Reference implementations of the derived operators, written exactly as §4
// defines them in terms of the primitive `split`:
//
//   sub_select(tp)(T) = split(tp, λ(a,b,c) b ∘_{α1..αn} [])(T)
//   all_anc(tp,f)(T)  = apply(λa f(1(a),2(a)))(split(tp, λ(a,b,c)⟨a, b∘[]⟩)(T))
//   all_desc(tp,f)(T) = apply(λa f(1(a),2(a)))(split(tp, λ(a,b,c)⟨b, c⟩)(T))
//
// They must agree with the direct implementations in `tree_ops.h`; the test
// suite cross-checks them and `bench_derived_ops` measures the cost of the
// generality.

Result<Datum> TreeSubSelectViaSplit(const StoreView& store, const Tree& tree,
                                    const TreePatternRef& tp,
                                    const SplitOptions& opts = {});

Result<Datum> TreeAllAncViaSplit(const StoreView& store, const Tree& tree,
                                 const TreePatternRef& tp, const AncFn& fn,
                                 const SplitOptions& opts = {});

Result<Datum> TreeAllDescViaSplit(const StoreView& store, const Tree& tree,
                                  const TreePatternRef& tp, const DescFn& fn,
                                  const SplitOptions& opts = {});

/// Extracts the alphabet-predicate constraining the *root* of a pattern
/// (descending through anchors and concatenations), the decomposition
/// anchor used by the §4 rewrite. Fails when the root is unconstrained
/// (`?`, a point, a closure, or a disjunction).
Result<PredicateRef> ExtractRootPredicate(const TreePatternRef& tp);

/// The §4 "Why Split?" rewrite, executed literally:
///
///   apply(sub_select(⊤tp))(split(anchor, λ(x,y,z) y ∘_{αi} z)(T))
///
/// The anchor nodes come from `index` (probing the pattern's root
/// predicate); each anchored subtree is materialized and searched with a
/// root-anchored `sub_select`.
Result<Datum> TreeSubSelectSplitRewrite(const StoreView& store,
                                        const Tree& tree,
                                        const TreePatternRef& tp,
                                        const AttributeIndex& index,
                                        const SplitOptions& opts = {});

/// The fused physical form of the same rewrite: probe the index for
/// candidate roots and run the matcher only there, materializing nothing.
Result<Datum> TreeSubSelectIndexed(const StoreView& store, const Tree& tree,
                                   const TreePatternRef& tp,
                                   const AttributeIndex& index,
                                   const SplitOptions& opts = {});

// ---------------------------------------------------------------------------
// The list analogue of the decomposition (companion-paper [31] territory):
// when a list pattern *begins* with a mandatory alphabet-predicate, an
// attribute index over the list yields the only candidate match starts.

/// Extracts the alphabet-predicate that every match's first element must
/// satisfy (descending through concatenation, `+`, and `!`). NotFound when
/// the head is unconstrained (`?`, `*`-led, disjunction, or a point).
Result<PredicateRef> ExtractHeadPredicate(const ListPatternRef& lp);

/// Index-anchored list sub_select: probes `index` with the pattern's head
/// predicate and attempts matches only at candidate positions. Agrees with
/// `ListSubSelect` whenever the head predicate is extractable.
Result<Datum> ListSubSelectIndexed(const StoreView& store, const List& list,
                                   const AnchoredListPattern& pattern,
                                   const AttributeIndex& index,
                                   const ListSplitOptions& opts = {});

}  // namespace aqua

#endif  // AQUA_ALGEBRA_DERIVED_H_
