#ifndef AQUA_ALGEBRA_LIST_OPS_H_
#define AQUA_ALGEBRA_LIST_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "object/object_store.h"
#include "bulk/datum.h"
#include "bulk/list.h"
#include "pattern/list_matcher.h"
#include "pattern/list_pattern.h"
#include "pattern/predicate.h"

namespace aqua {

/// Per-element mapping used by list `apply`; may create objects.
using ListNodeFn = std::function<Result<Oid>(ObjectStore&, Oid)>;

/// Per-element mapping over a store transaction (see tree_ops.h).
using ListTxnNodeFn = std::function<Result<Oid>(StoreTxn&, Oid)>;

/// The function parameter of list `split`: the prefix context `x` (ending in
/// its α point), the match `y` (with points at cut positions), and the cut
/// sublists `z`.
using ListSplitFn = std::function<Result<Datum>(
    const List& x, const List& y, const std::vector<List>& z)>;

/// Options controlling list `split` and derived operators; mirrors the tree
/// `SplitOptions` through the list↔list-like-tree mapping (§6).
struct ListSplitOptions {
  std::string context_label = "a";
  std::string cut_prefix = "a";
  ListMatchOptions match;
};

/// The three pieces of one list split.
struct ListSplitPieces {
  List x;  ///< prefix before the match, ending in the α point
  List y;  ///< the match, with a point per pruned run and per cut suffix
  std::vector<List> z;  ///< pruned runs (in order), then the suffix (if any)
};

/// Builds the pieces for one enumerated list match. Each maximal pruned run
/// becomes one cut; the unmatched suffix (the match's "descendants" in the
/// list-like-tree view) becomes the final cut when non-empty.
ListSplitPieces MakeListSplitPieces(const List& list, const ListMatch& match,
                                    const ListSplitOptions& opts = {});

/// Reassembles `x ∘_α y ∘_{αi} zi` back into the original list.
List ReassembleListSplit(const ListSplitPieces& pieces,
                         const ListSplitOptions& opts = {});

/// `select(p)(L)`: stable filter keeping elements satisfying `p`
/// (concatenation points are invisible to predicates and are dropped).
Result<List> ListSelect(const StoreView& store, const List& list,
                        const PredicateRef& pred);

/// `apply(f)(L)`: maps every cell; points copy unchanged.
Result<List> ListApply(ObjectStore& store, const List& list,
                       const ListNodeFn& fn);

/// `apply` over a transaction: reads and writes go through `txn`; with a
/// `DeltaTxn`, created objects surface as provisional oids until commit.
Result<List> ListApplyTxn(StoreTxn& txn, const List& list,
                          const ListTxnNodeFn& fn);

/// `split(lp, f)(L)` (§6): the list primitive.
Result<Datum> ListSplit(const StoreView& store, const List& list,
                        const AnchoredListPattern& lp, const ListSplitFn& fn,
                        const ListSplitOptions& opts = {});

/// `sub_select(lp)(L)`: the set of sublists matching `lp` (pruned runs
/// removed).
Result<Datum> ListSubSelect(const StoreView& store, const List& list,
                            const AnchoredListPattern& lp,
                            const ListSplitOptions& opts = {});

class Nfa;      // pattern/nfa.h
class LazyDfa;  // pattern/dfa.h

/// Caller-owned existence prefilter for `ListSubSelectPrefiltered`: a
/// search-compiled NFA for `lp.body`, optionally fronted by a lazily
/// determinized DFA over the same NFA. Compiling the automaton once and
/// reusing it across every list of a corpus (and warming one DFA per
/// worker) is what makes the prefilter pay off inside a fan-out — the
/// plain `ListSubSelect` recompiles it per call.
struct ListPrefilter {
  const Nfa* nfa = nullptr;  ///< null disables the prefilter entirely
  LazyDfa* dfa = nullptr;    ///< optional; must be built over `nfa`
};

/// `ListSubSelect` with the prefilter automaton supplied by the caller
/// instead of compiled per call. `pre.nfa == nullptr` (e.g. for patterns
/// the NFA cannot compile) skips the prefilter and goes straight to the
/// backtracking matcher, exactly like the plain overload.
Result<Datum> ListSubSelectPrefiltered(const StoreView& store,
                                       const List& list,
                                       const AnchoredListPattern& lp,
                                       const ListSplitOptions& opts,
                                       const ListPrefilter& pre);

using ListAncFn =
    std::function<Result<Datum>(const List& prefix, const List& match)>;
using ListDescFn = std::function<Result<Datum>(const List& match,
                                               const std::vector<List>& desc)>;

/// `all_anc(lp, f)(L)`: per match, `f(x, y-with-points-closed)` — e.g. the
/// paper's melody query returning ⟨notes before the melody, the melody⟩.
Result<Datum> ListAllAnc(const StoreView& store, const List& list,
                         const AnchoredListPattern& lp, const ListAncFn& fn,
                         const ListSplitOptions& opts = {});

/// `all_desc(lp, f)(L)`: per match, `f(y, z)`.
Result<Datum> ListAllDesc(const StoreView& store, const List& list,
                          const AnchoredListPattern& lp, const ListDescFn& fn,
                          const ListSplitOptions& opts = {});

}  // namespace aqua

#endif  // AQUA_ALGEBRA_LIST_OPS_H_
