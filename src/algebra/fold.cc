#include "algebra/fold.h"

namespace aqua {

namespace {

Result<Value> FoldFrom(const Tree& tree, NodeId v, const TreeFoldFn& combine) {
  std::vector<Value> child_results;
  child_results.reserve(tree.arity(v));
  for (NodeId c : tree.children(v)) {
    AQUA_ASSIGN_OR_RETURN(Value result, FoldFrom(tree, c, combine));
    child_results.push_back(std::move(result));
  }
  return combine(tree.payload(v), child_results);
}

}  // namespace

Result<Value> TreeFold(const Tree& tree, const TreeFoldFn& combine,
                       Value empty_value) {
  if (combine == nullptr) return Status::InvalidArgument("null fold function");
  if (tree.empty()) return empty_value;
  return FoldFrom(tree, tree.root(), combine);
}

Result<Value> ListFoldLeft(const List& list, Value init,
                           const ListFoldFn& step) {
  if (step == nullptr) return Status::InvalidArgument("null fold function");
  Value acc = std::move(init);
  for (size_t i = 0; i < list.size(); ++i) {
    AQUA_ASSIGN_OR_RETURN(acc, step(acc, list.at(i)));
  }
  return acc;
}

Result<Value> ListFoldRight(const List& list, Value init,
                            const ListFoldRightFn& step) {
  if (step == nullptr) return Status::InvalidArgument("null fold function");
  Value acc = std::move(init);
  for (size_t i = list.size(); i > 0; --i) {
    AQUA_ASSIGN_OR_RETURN(acc, step(list.at(i - 1), acc));
  }
  return acc;
}

}  // namespace aqua
