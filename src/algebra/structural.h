#ifndef AQUA_ALGEBRA_STRUCTURAL_H_
#define AQUA_ALGEBRA_STRUCTURAL_H_

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "common/result.h"
#include "algebra/tree_ops.h"
#include "bulk/list.h"
#include "bulk/tree.h"
#include "object/object_store.h"
#include "pattern/tree_pattern.h"

namespace aqua {

// §4 opens: "AQUA also provides a range of other operators for purposes
// like navigating, updating, and providing structural information about a
// tree instance. These operators are not discussed in this paper." This
// module supplies that range. All update operators are copy-based and
// order-stable: the input instance is never mutated.

// ---------------------------------------------------------------------------
// Navigation

/// A path from the root: successive child indexes ([] is the root itself).
using TreePath = std::vector<size_t>;

/// Resolves a path to a node; OutOfRange when a step does not exist.
Result<NodeId> NodeAtPath(const Tree& tree, const TreePath& path);

/// The path from the root to `node`.
Result<TreePath> PathToNode(const Tree& tree, NodeId node);

/// The subtree rooted at `path`, as a fresh tree.
Result<Tree> SubtreeAtPath(const Tree& tree, const TreePath& path);

/// The leaves of the tree, left to right, as a list (cells and points).
List Frontier(const Tree& tree);

/// Preorder linearization of the tree as a list.
List PreorderList(const Tree& tree);

// ---------------------------------------------------------------------------
// Structural information

/// Per-arity node counts (arity -> number of nodes with that out-degree).
std::map<size_t, size_t> ArityHistogram(const Tree& tree);

/// Summary statistics of a tree instance.
struct TreeStats {
  size_t num_nodes = 0;
  size_t num_leaves = 0;
  size_t num_points = 0;  ///< concatenation-point (labeled NULL) nodes
  size_t height = 0;
  size_t max_arity = 0;
  /// True when every internal node has the same out-degree ("fixed-arity"
  /// in the paper's §2 sense).
  bool fixed_arity = true;
};
TreeStats ComputeTreeStats(const Tree& tree);

/// Number of nodes whose object satisfies `pred` (points never count).
size_t CountSatisfying(const StoreView& store, const Tree& tree,
                       const PredicateRef& pred);

// ---------------------------------------------------------------------------
// Point-free structural updates

/// Returns a copy with `subtree` inserted as child `position` of the node
/// at `path` (position clamped to the child count appends).
Result<Tree> InsertSubtree(const Tree& tree, const TreePath& path,
                           size_t position, const Tree& subtree);

/// Returns a copy with the subtree at `path` removed (removing the root
/// yields nil).
Result<Tree> DeleteSubtree(const Tree& tree, const TreePath& path);

/// Returns a copy with the subtree at `path` replaced by `replacement`.
Result<Tree> ReplaceSubtree(const Tree& tree, const TreePath& path,
                            const Tree& replacement);

// ---------------------------------------------------------------------------
// Pattern-directed updates (the §5 rewrite engine, generalized)

/// Builds the replacement for a match from its split pieces. The returned
/// tree may contain the cut points `@a1..@an` (and `@a` is not available —
/// the context is reattached by the engine); any points it does contain are
/// substituted with the corresponding cut subtrees.
using MatchRewriteFn = std::function<Result<Tree>(const SplitPieces&)>;

/// Rewrites the *first* match of `tp` (in preorder-root order):
///   result = x ∘_a fn(pieces) ∘_{a1} z1 ... ∘_{an} zn
/// Returns nullopt when there is no match.
Result<std::optional<Tree>> RewriteFirstMatch(const StoreView& store,
                                              const Tree& tree,
                                              const TreePatternRef& tp,
                                              const MatchRewriteFn& fn,
                                              const SplitOptions& opts = {});

/// Repeatedly applies `RewriteFirstMatch` until no match remains (or
/// `max_passes` is hit, which returns InvalidArgument — the rule set does
/// not terminate). `passes` (optional) receives the number of rewrites.
Result<Tree> RewriteToFixpoint(const StoreView& store, const Tree& tree,
                               const TreePatternRef& tp,
                               const MatchRewriteFn& fn,
                               const SplitOptions& opts = {},
                               size_t max_passes = 10000,
                               size_t* passes = nullptr);

// ---------------------------------------------------------------------------
// List structural updates

Result<List> ListInsert(const List& list, size_t position,
                        const NodePayload& element);
Result<List> ListDelete(const List& list, size_t position);
Result<List> ListReplace(const List& list, size_t position,
                         const NodePayload& element);
/// Reverses the list (an order-*sensitive* operator the set algebra cannot
/// express).
List ListReverse(const List& list);

}  // namespace aqua

#endif  // AQUA_ALGEBRA_STRUCTURAL_H_
