#include "algebra/structural.h"

#include <algorithm>

#include "bulk/concat.h"
#include "obs/metrics.h"
#include "pattern/tree_matcher.h"

namespace aqua {

Result<NodeId> NodeAtPath(const Tree& tree, const TreePath& path) {
  if (tree.empty()) return Status::OutOfRange("path into an empty tree");
  NodeId cur = tree.root();
  for (size_t step : path) {
    const auto& kids = tree.children(cur);
    if (step >= kids.size()) {
      return Status::OutOfRange("path step " + std::to_string(step) +
                                " exceeds arity " +
                                std::to_string(kids.size()));
    }
    cur = kids[step];
  }
  return cur;
}

Result<TreePath> PathToNode(const Tree& tree, NodeId node) {
  if (tree.empty() || node >= tree.size()) {
    return Status::OutOfRange("node out of range");
  }
  TreePath reversed;
  NodeId cur = node;
  while (tree.parent(cur) != kInvalidNode) {
    NodeId parent = tree.parent(cur);
    AQUA_ASSIGN_OR_RETURN(size_t idx, tree.ChildIndex(parent, cur));
    reversed.push_back(idx);
    cur = parent;
  }
  if (cur != tree.root()) {
    return Status::Internal("node does not reach the root");
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

Result<Tree> SubtreeAtPath(const Tree& tree, const TreePath& path) {
  AQUA_ASSIGN_OR_RETURN(NodeId node, NodeAtPath(tree, path));
  return tree.SubtreeCopy(node);
}

List Frontier(const Tree& tree) {
  AQUA_OBS_COUNT("algebra.structural_nodes_visited", tree.size());
  List out;
  for (NodeId v : tree.Preorder()) {
    if (tree.is_leaf(v)) out.Append(tree.payload(v));
  }
  return out;
}

List PreorderList(const Tree& tree) {
  AQUA_OBS_COUNT("algebra.structural_nodes_visited", tree.size());
  List out;
  for (NodeId v : tree.Preorder()) out.Append(tree.payload(v));
  return out;
}

std::map<size_t, size_t> ArityHistogram(const Tree& tree) {
  AQUA_OBS_COUNT("algebra.structural_nodes_visited", tree.size());
  std::map<size_t, size_t> hist;
  for (NodeId v : tree.Preorder()) ++hist[tree.arity(v)];
  return hist;
}

TreeStats ComputeTreeStats(const Tree& tree) {
  TreeStats stats;
  if (tree.empty()) return stats;
  AQUA_OBS_COUNT("algebra.structural_nodes_visited", tree.size());
  stats.num_nodes = tree.size();
  stats.height = tree.Height();
  stats.max_arity = tree.MaxArity();
  std::optional<size_t> internal_arity;
  for (NodeId v : tree.Preorder()) {
    if (tree.is_leaf(v)) {
      ++stats.num_leaves;
    } else {
      if (internal_arity.has_value() && *internal_arity != tree.arity(v)) {
        stats.fixed_arity = false;
      }
      internal_arity = tree.arity(v);
    }
    if (tree.payload(v).is_concat_point()) ++stats.num_points;
  }
  return stats;
}

size_t CountSatisfying(const StoreView& store, const Tree& tree,
                       const PredicateRef& pred) {
  if (pred == nullptr) return 0;
  size_t count = 0;
  for (NodeId v : tree.Preorder()) {
    const NodePayload& p = tree.payload(v);
    if (p.is_cell() && pred->Eval(store, p.oid())) ++count;
  }
  return count;
}

Result<Tree> InsertSubtree(const Tree& tree, const TreePath& path,
                           size_t position, const Tree& subtree) {
  if (subtree.empty()) return tree;
  AQUA_ASSIGN_OR_RETURN(NodeId target, NodeAtPath(tree, path));
  if (tree.payload(target).is_concat_point()) {
    return Status::InvalidArgument(
        "cannot insert a child under a concatenation point");
  }
  // Copy with an injected child at `position` (clamped).
  struct Copier {
    const Tree* src;
    const Tree* insert;
    Tree* dst;
    NodeId target;
    size_t position;
    NodeId Copy(NodeId s) {
      NodeId copy = dst->AddNode(src->payload(s));
      const auto& kids = src->children(s);
      size_t pos = s == target ? std::min(position, kids.size()) : kids.size() + 1;
      for (size_t i = 0; i <= kids.size(); ++i) {
        if (i == pos) {
          NodeId inserted = CopyOther(insert->root());
          Status st = dst->AddChild(copy, inserted);
          (void)st;
        }
        if (i == kids.size()) break;
        NodeId cc = Copy(kids[i]);
        Status st = dst->AddChild(copy, cc);
        (void)st;
      }
      return copy;
    }
    NodeId CopyOther(NodeId s) {
      NodeId copy = dst->AddNode(insert->payload(s));
      for (NodeId c : insert->children(s)) {
        Status st = dst->AddChild(copy, CopyOther(c));
        (void)st;
      }
      return copy;
    }
  };
  Tree out;
  Copier copier{&tree, &subtree, &out, target, position};
  NodeId root = copier.Copy(tree.root());
  AQUA_RETURN_IF_ERROR(out.SetRoot(root));
  return out;
}

Result<Tree> DeleteSubtree(const Tree& tree, const TreePath& path) {
  AQUA_ASSIGN_OR_RETURN(NodeId target, NodeAtPath(tree, path));
  return tree.CopyWithSubtreeRemoved(target);
}

Result<Tree> ReplaceSubtree(const Tree& tree, const TreePath& path,
                            const Tree& replacement) {
  AQUA_ASSIGN_OR_RETURN(NodeId target, NodeAtPath(tree, path));
  // Route through a fresh point label that cannot collide with user labels.
  static const char kTmpLabel[] = "__replace_tmp";
  Tree with_point = tree.CopyWithSubtreeReplacedByPoint(target, kTmpLabel);
  if (replacement.empty()) return ConcatNilAt(with_point, kTmpLabel);
  return ConcatAt(with_point, kTmpLabel, replacement);
}

Result<std::optional<Tree>> RewriteFirstMatch(const StoreView& store,
                                              const Tree& tree,
                                              const TreePatternRef& tp,
                                              const MatchRewriteFn& fn,
                                              const SplitOptions& opts) {
  TreeMatchOptions match_opts = opts.match;
  match_opts.max_matches = 1;
  match_opts.first_derivation_per_root = true;
  TreeMatcher matcher(store, tree, match_opts);
  AQUA_ASSIGN_OR_RETURN(std::vector<TreeMatch> matches, matcher.FindAll(tp));
  if (matches.empty()) return std::optional<Tree>();
  AQUA_ASSIGN_OR_RETURN(SplitPieces pieces,
                        MakeSplitPieces(tree, matches[0], opts));
  AQUA_ASSIGN_OR_RETURN(Tree replacement, fn(pieces));
  Tree out = ConcatAt(pieces.x, opts.context_label, replacement);
  for (size_t i = 0; i < pieces.z.size(); ++i) {
    out = ConcatAt(out, opts.cut_prefix + std::to_string(i + 1), pieces.z[i]);
  }
  return std::optional<Tree>(std::move(out));
}

Result<Tree> RewriteToFixpoint(const StoreView& store, const Tree& tree,
                               const TreePatternRef& tp,
                               const MatchRewriteFn& fn,
                               const SplitOptions& opts, size_t max_passes,
                               size_t* passes) {
  Tree current = tree;
  size_t count = 0;
  while (true) {
    AQUA_ASSIGN_OR_RETURN(std::optional<Tree> next,
                          RewriteFirstMatch(store, current, tp, fn, opts));
    if (!next.has_value()) break;
    current = std::move(*next);
    if (++count > max_passes) {
      return Status::InvalidArgument(
          "rewrite did not reach a fixpoint within " +
          std::to_string(max_passes) + " passes");
    }
  }
  if (passes != nullptr) *passes = count;
  return current;
}

Result<List> ListInsert(const List& list, size_t position,
                        const NodePayload& element) {
  if (position > list.size()) {
    return Status::OutOfRange("insert position beyond list end");
  }
  List out = list.Sublist(0, position);
  out.Append(element);
  for (size_t i = position; i < list.size(); ++i) out.Append(list.at(i));
  return out;
}

Result<List> ListDelete(const List& list, size_t position) {
  if (position >= list.size()) {
    return Status::OutOfRange("delete position beyond list end");
  }
  List out = list.Sublist(0, position);
  for (size_t i = position + 1; i < list.size(); ++i) out.Append(list.at(i));
  return out;
}

Result<List> ListReplace(const List& list, size_t position,
                         const NodePayload& element) {
  if (position >= list.size()) {
    return Status::OutOfRange("replace position beyond list end");
  }
  List out = list.Sublist(0, position);
  out.Append(element);
  for (size_t i = position + 1; i < list.size(); ++i) out.Append(list.at(i));
  return out;
}

List ListReverse(const List& list) {
  List out;
  for (size_t i = list.size(); i > 0; --i) out.Append(list.at(i - 1));
  return out;
}

}  // namespace aqua
