#ifndef AQUA_ALGEBRA_FN_EXPR_H_
#define AQUA_ALGEBRA_FN_EXPR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "object/object_store.h"
#include "object/store_txn.h"
#include "pattern/predicate.h"

namespace aqua {

class FnExpr;
using FnExprRef = std::shared_ptr<const FnExpr>;

/// Statically inferred effect class of an `apply` function. The lattice is
/// ordered kPure < kReadOnly < kStoreWrite < kOpaque; composition takes the
/// maximum. `aqua::lint`'s effect analysis (lint/effects.h) classifies plan
/// nodes with these. `exec::Compile` fans `apply` out morsel-parallel when
/// the effect is at most kReadOnly (plain fan-out: nothing mutates), and —
/// since the store became versioned — also when the effect is kStoreWrite
/// *and* the snapshot-safety analysis below finds no order dependence: each
/// worker evaluates against the query's snapshot into a thread-local
/// delta, and the order-stable delta fold replays the serial oid sequence.
enum class FnEffect {
  kPure,        ///< no store access at all (identity, constant)
  kReadOnly,    ///< reads attributes (predicate guards); never writes
  kStoreWrite,  ///< creates or updates objects (update / set_attr)
  kOpaque,      ///< an arbitrary std::function — nothing is known
};

const char* FnEffectToString(FnEffect e);

/// True when a function of effect `e` is certified for the read-only
/// parallel fan-out path (kPure / kReadOnly). Store-writing expressions go
/// through the snapshot-delta path instead (see `FnExprSnapshotSafety`).
bool FnEffectParallelSafe(FnEffect e);

/// One attribute assignment of an update / set_attr expression.
struct FnAttrSet {
  std::string attr;
  Value value;
};

/// A structured function expression for `apply` — the analyzable fragment
/// of `NodeFn`. Where `NodeFn` is an opaque `std::function` (effect
/// kOpaque, always executed serially), an `FnExpr` is a small IR whose
/// effect is decidable by inspection:
///
///   identity                — kPure:      every cell maps to itself
///   const(o)                — kPure:      every cell maps to object `o`
///   choose(p, f, g)         — guard `p` reads attributes; picks f or g
///   update(a1=v1, ...)      — kStoreWrite: fresh copy with attrs replaced
///   set_attr(a1=v1, ...)    — kStoreWrite: in-place write, same object out
///   compose(f, g)           — f after g; effect = max(f, g)
///
/// `Q::TreeApplyExpr` / `Q::ListApplyExpr` stamp the expression on the plan
/// node *and* materialize the equivalent `NodeFn`, so the executor runs the
/// same closure either way; the expression exists so lint and the compiler
/// can reason about it.
class FnExpr {
 public:
  enum class Kind { kIdentity, kConst, kChoose, kUpdate, kSetAttr, kCompose };

  static FnExprRef Identity();
  static FnExprRef Const(Oid oid);
  /// `guard` null means `true` (then-branch always). Branches may be null,
  /// meaning identity.
  static FnExprRef Choose(PredicateRef guard, FnExprRef then_expr,
                          FnExprRef else_expr);
  static FnExprRef Update(std::vector<FnAttrSet> sets);
  /// In-place attribute writes on the incoming object; evaluates to the
  /// same oid (so it composes like identity but carries kStoreWrite).
  static FnExprRef SetAttr(std::vector<FnAttrSet> sets);
  /// `outer` after `inner`; null components mean identity.
  static FnExprRef Compose(FnExprRef outer, FnExprRef inner);

  Kind kind() const { return kind_; }
  Oid const_oid() const { return const_oid_; }
  const PredicateRef& guard() const { return guard_; }
  const FnExprRef& then_expr() const { return a_; }
  const FnExprRef& else_expr() const { return b_; }
  const FnExprRef& outer() const { return a_; }
  const FnExprRef& inner() const { return b_; }
  const std::vector<FnAttrSet>& sets() const { return sets_; }

  /// The effect class, by structural induction (null subtrees are
  /// identity, i.e. kPure).
  FnEffect effect() const;

  /// Evaluates the expression on one cell against a store transaction:
  /// `DirectTxn` for the serial head path, `DeltaTxn` for the
  /// snapshot-isolated parallel path.
  Result<Oid> Eval(StoreTxn& txn, Oid oid) const;

  /// Convenience: evaluates directly against the head store (serial path).
  Result<Oid> Eval(ObjectStore& store, Oid oid) const {
    DirectTxn txn(&store);
    return Eval(txn, oid);
  }

  /// Compact rendering, e.g. `choose({age > 60}, update(retired=true), id)`.
  std::string ToString() const;

 private:
  explicit FnExpr(Kind kind) : kind_(kind) {}

  Kind kind_;
  Oid const_oid_{};
  PredicateRef guard_;
  FnExprRef a_;  // choose-then / compose-outer
  FnExprRef b_;  // choose-else / compose-inner
  std::vector<FnAttrSet> sets_;
};

/// The effect of a possibly-absent expression: null (no structured form —
/// a bare `std::function` or no function at all) is kOpaque.
FnEffect FnExprEffect(const FnExprRef& expr);

/// Verdict of the snapshot order-dependence analysis for a store-writing
/// expression evaluated per item under snapshot isolation with an
/// item-order delta fold.
///
/// The delta merge is deterministic by construction; what can diverge from
/// serial is *reads*: serially, item i+1 observes item i's in-place writes,
/// while under snapshot isolation it does not. So the fold is byte-identical
/// to serial exactly when nothing the expression reads overlaps what it
/// writes in place on objects that existed before the query:
///
///   conflict  ⇔  in-place-write-set(pre-existing targets) ∩ read-set ≠ ∅
///
/// where guards contribute their attributes to the read set, `update`
/// contributes every attribute of its input (it copies them all), and
/// writes to objects the expression itself freshly created are txn-local
/// and never conflict. `update` alone is therefore always safe — it only
/// creates fresh copies — which is why the paper-style retire/raise applies
/// parallelize; `set_attr` on input cells is safe unless a guard (or an
/// update's copy) also reads one of the attributes it writes.
struct FnSnapshotSafety {
  bool safe = false;
  /// Human-readable order-dependence witness when `!safe` (the payload of
  /// lint's AQL021 snapshot-write-conflict).
  std::string conflict;
};

/// Analyzes a possibly-absent expression. Null (opaque) is never safe.
FnSnapshotSafety FnExprSnapshotSafety(const FnExprRef& expr);

}  // namespace aqua

#endif  // AQUA_ALGEBRA_FN_EXPR_H_
