#ifndef AQUA_ALGEBRA_FN_EXPR_H_
#define AQUA_ALGEBRA_FN_EXPR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "object/object_store.h"
#include "pattern/predicate.h"

namespace aqua {

class FnExpr;
using FnExprRef = std::shared_ptr<const FnExpr>;

/// Statically inferred effect class of an `apply` function. The lattice is
/// ordered kPure < kReadOnly < kStoreWrite < kOpaque; composition takes the
/// maximum. `aqua::lint`'s effect analysis (lint/effects.h) classifies plan
/// nodes with these, and `exec::Compile` fans `apply` out morsel-parallel
/// exactly when the effect is at most kReadOnly — such a function neither
/// mutates the store (no racy `Create`, no Oid-allocation-order dependence)
/// nor depends on evaluation order, so the parallel run is byte-identical
/// to serial.
enum class FnEffect {
  kPure,        ///< no store access at all (identity, constant)
  kReadOnly,    ///< reads attributes (predicate guards); never writes
  kStoreWrite,  ///< creates or updates objects (update expressions)
  kOpaque,      ///< an arbitrary std::function — nothing is known
};

const char* FnEffectToString(FnEffect e);

/// True when a function of effect `e` is certified for the parallel
/// fan-out path (kPure / kReadOnly).
bool FnEffectParallelSafe(FnEffect e);

/// One attribute assignment of an update expression.
struct FnAttrSet {
  std::string attr;
  Value value;
};

/// A structured function expression for `apply` — the analyzable fragment
/// of `NodeFn`. Where `NodeFn` is an opaque `std::function` (effect
/// kOpaque, always executed serially), an `FnExpr` is a small IR whose
/// effect is decidable by inspection:
///
///   identity                — kPure:      every cell maps to itself
///   const(o)                — kPure:      every cell maps to object `o`
///   choose(p, f, g)         — guard `p` reads attributes; picks f or g
///   update(a1=v1, ...)      — kStoreWrite: fresh copy with attrs replaced
///   compose(f, g)           — f after g; effect = max(f, g)
///
/// `Q::TreeApplyExpr` / `Q::ListApplyExpr` stamp the expression on the plan
/// node *and* materialize the equivalent `NodeFn`, so the executor runs the
/// same closure either way; the expression exists so lint and the compiler
/// can reason about it.
class FnExpr {
 public:
  enum class Kind { kIdentity, kConst, kChoose, kUpdate, kCompose };

  static FnExprRef Identity();
  static FnExprRef Const(Oid oid);
  /// `guard` null means `true` (then-branch always). Branches may be null,
  /// meaning identity.
  static FnExprRef Choose(PredicateRef guard, FnExprRef then_expr,
                          FnExprRef else_expr);
  static FnExprRef Update(std::vector<FnAttrSet> sets);
  /// `outer` after `inner`; null components mean identity.
  static FnExprRef Compose(FnExprRef outer, FnExprRef inner);

  Kind kind() const { return kind_; }
  Oid const_oid() const { return const_oid_; }
  const PredicateRef& guard() const { return guard_; }
  const FnExprRef& then_expr() const { return a_; }
  const FnExprRef& else_expr() const { return b_; }
  const FnExprRef& outer() const { return a_; }
  const FnExprRef& inner() const { return b_; }
  const std::vector<FnAttrSet>& sets() const { return sets_; }

  /// The effect class, by structural induction (null subtrees are
  /// identity, i.e. kPure).
  FnEffect effect() const;

  /// Evaluates the expression on one cell. Only kStoreWrite expressions
  /// touch `store` mutably.
  Result<Oid> Eval(ObjectStore& store, Oid oid) const;

  /// Compact rendering, e.g. `choose({age > 60}, update(retired=true), id)`.
  std::string ToString() const;

 private:
  explicit FnExpr(Kind kind) : kind_(kind) {}

  Kind kind_;
  Oid const_oid_{};
  PredicateRef guard_;
  FnExprRef a_;  // choose-then / compose-outer
  FnExprRef b_;  // choose-else / compose-inner
  std::vector<FnAttrSet> sets_;
};

/// The effect of a possibly-absent expression: null (no structured form —
/// a bare `std::function` or no function at all) is kOpaque.
FnEffect FnExprEffect(const FnExprRef& expr);

}  // namespace aqua

#endif  // AQUA_ALGEBRA_FN_EXPR_H_
