#include "algebra/derived.h"

#include "bulk/concat.h"
#include "obs/metrics.h"
#include "pattern/nfa.h"

namespace aqua {

Result<Datum> TreeSubSelectViaSplit(const StoreView& store, const Tree& tree,
                                    const TreePatternRef& tp,
                                    const SplitOptions& opts) {
  // split(tp, λ(a,b,c) b ∘_{α1..αn} [])
  return TreeSplit(
      store, tree, tp,
      [](const Tree& x, const Tree& y,
         const std::vector<Tree>& z) -> Result<Datum> {
        (void)x;
        (void)z;
        return Datum::Of(CloseAllPoints(y));
      },
      opts);
}

Result<Datum> TreeAllAncViaSplit(const StoreView& store, const Tree& tree,
                                 const TreePatternRef& tp, const AncFn& fn,
                                 const SplitOptions& opts) {
  // split(tp, λ(a,b,c) ⟨a, b ∘ []⟩), then f over each tuple's fields.
  AQUA_ASSIGN_OR_RETURN(
      Datum tuples,
      TreeSplit(
          store, tree, tp,
          [](const Tree& x, const Tree& y,
             const std::vector<Tree>& z) -> Result<Datum> {
            (void)z;
            return Datum::Tuple(
                {Datum::Of(x), Datum::Of(CloseAllPoints(y))});
          },
          opts));
  Datum out = Datum::Set({});
  for (const Datum& t : tuples.children()) {
    AQUA_ASSIGN_OR_RETURN(Datum mapped, fn(t.at(0).tree(), t.at(1).tree()));
    out.SetInsert(std::move(mapped));
  }
  return out;
}

Result<Datum> TreeAllDescViaSplit(const StoreView& store, const Tree& tree,
                                  const TreePatternRef& tp, const DescFn& fn,
                                  const SplitOptions& opts) {
  // split(tp, λ(a,b,c) ⟨b, c⟩), then f over each tuple's fields. The list of
  // descendants is carried as a tuple-of-trees datum.
  AQUA_ASSIGN_OR_RETURN(
      Datum tuples,
      TreeSplit(
          store, tree, tp,
          [](const Tree& x, const Tree& y,
             const std::vector<Tree>& z) -> Result<Datum> {
            (void)x;
            std::vector<Datum> desc;
            desc.reserve(z.size());
            for (const Tree& t : z) desc.push_back(Datum::Of(t));
            return Datum::Tuple({Datum::Of(y), Datum::Tuple(std::move(desc))});
          },
          opts));
  Datum out = Datum::Set({});
  for (const Datum& t : tuples.children()) {
    std::vector<Tree> z;
    z.reserve(t.at(1).size());
    for (const Datum& d : t.at(1).children()) z.push_back(d.tree());
    AQUA_ASSIGN_OR_RETURN(Datum mapped, fn(t.at(0).tree(), z));
    out.SetInsert(std::move(mapped));
  }
  return out;
}

Result<PredicateRef> ExtractRootPredicate(const TreePatternRef& tp) {
  if (tp == nullptr) return Status::InvalidArgument("null tree pattern");
  switch (tp->kind()) {
    case TreePattern::Kind::kLeaf:
    case TreePattern::Kind::kNode:
      if (tp->pred() == nullptr) {
        return Status::NotFound("pattern root is '?' (unconstrained)");
      }
      return tp->pred();
    case TreePattern::Kind::kRootAnchor:
    case TreePattern::Kind::kLeafAnchor:
    case TreePattern::Kind::kPrune:
      return ExtractRootPredicate(tp->inner());
    case TreePattern::Kind::kConcatAt:
      return ExtractRootPredicate(tp->first());
    case TreePattern::Kind::kAlt:
    case TreePattern::Kind::kPoint:
    case TreePattern::Kind::kStarAt:
    case TreePattern::Kind::kPlusAt:
      return Status::NotFound(
          "pattern root predicate is not extractable from " + tp->ToString());
  }
  return Status::Internal("unreachable in ExtractRootPredicate");
}

Result<Datum> TreeSubSelectSplitRewrite(const StoreView& store,
                                        const Tree& tree,
                                        const TreePatternRef& tp,
                                        const AttributeIndex& index,
                                        const SplitOptions& opts) {
  AQUA_ASSIGN_OR_RETURN(PredicateRef anchor, ExtractRootPredicate(tp));
  AQUA_ASSIGN_OR_RETURN(std::vector<NodeId> candidates, index.Probe(*anchor));

  // split(anchor, λ(x,y,z) y ∘_{αi} z): reattaching all descendants to a
  // leaf match yields exactly the subtree rooted at the anchor node.
  TreePatternRef anchored = TreePattern::RootAnchor(tp);
  Datum out = Datum::Set({});
  for (NodeId v : candidates) {
    Tree piece = tree.SubtreeCopy(v);
    AQUA_ASSIGN_OR_RETURN(Datum sub, TreeSubSelect(store, piece, anchored,
                                                   opts));
    for (const Datum& d : sub.children()) out.SetInsert(d);
  }
  return out;
}

Result<PredicateRef> ExtractHeadPredicate(const ListPatternRef& lp) {
  if (lp == nullptr) return Status::InvalidArgument("null list pattern");
  switch (lp->kind()) {
    case ListPattern::Kind::kPred:
      return lp->pred();
    case ListPattern::Kind::kConcat: {
      if (lp->parts().empty()) {
        return Status::NotFound("empty pattern has no head");
      }
      // Only the first part pins the match start; a nullable head part
      // (e.g. a leading `?*`) leaves the start unconstrained.
      if (lp->parts()[0]->Nullable()) {
        return Status::NotFound("pattern head is nullable");
      }
      return ExtractHeadPredicate(lp->parts()[0]);
    }
    case ListPattern::Kind::kPlus:
    case ListPattern::Kind::kPrune:
      return ExtractHeadPredicate(lp->inner());
    case ListPattern::Kind::kAny:
    case ListPattern::Kind::kAlt:
    case ListPattern::Kind::kStar:
    case ListPattern::Kind::kPoint:
    case ListPattern::Kind::kTreeAtom:
      return Status::NotFound("pattern head predicate is not extractable");
  }
  return Status::Internal("unreachable in ExtractHeadPredicate");
}

Result<Datum> ListSubSelectIndexed(const StoreView& store, const List& list,
                                   const AnchoredListPattern& pattern,
                                   const AttributeIndex& index,
                                   const ListSplitOptions& opts) {
  AQUA_ASSIGN_OR_RETURN(PredicateRef head, ExtractHeadPredicate(pattern.body));
  AQUA_ASSIGN_OR_RETURN(std::vector<NodeId> candidates, index.Probe(*head));
  // Dense candidate sets approach a full backtracking scan, so a one-pass
  // NFA existence check (whose language over-approximates the matcher's)
  // pays for itself by proving "no match" early. Sparse candidate sets
  // skip it: probing a handful of begins is already cheaper than the scan.
  if (candidates.size() * 16 >= list.size()) {
    auto nfa = Nfa::CompileSearch(pattern.body);
    if (nfa.ok() && !nfa->ExistsMatch(store, list)) {
      AQUA_OBS_COUNT("pattern.nfa_prefilter_rejects", 1);
      return Datum::Set({});
    }
  }
  std::vector<size_t> begins(candidates.begin(), candidates.end());
  ListMatcher matcher(store, list);
  AQUA_ASSIGN_OR_RETURN(std::vector<ListMatch> matches,
                        matcher.FindAllAtBegins(pattern, begins, opts.match));
  Datum out = Datum::Set({});
  for (const ListMatch& m : matches) {
    List y;
    auto ranges = m.PruneRanges();
    size_t next_range = 0;
    for (size_t i = m.begin; i < m.end; ++i) {
      if (next_range < ranges.size() && i == ranges[next_range].first) {
        i = ranges[next_range].second - 1;
        ++next_range;
        continue;
      }
      y.Append(list.at(i));
    }
    out.SetInsert(Datum::Of(std::move(y)));
  }
  return out;
}

Result<Datum> TreeSubSelectIndexed(const StoreView& store, const Tree& tree,
                                   const TreePatternRef& tp,
                                   const AttributeIndex& index,
                                   const SplitOptions& opts) {
  AQUA_ASSIGN_OR_RETURN(PredicateRef anchor, ExtractRootPredicate(tp));
  AQUA_ASSIGN_OR_RETURN(std::vector<NodeId> candidates, index.Probe(*anchor));
  TreeMatcher matcher(store, tree, opts.match);
  AQUA_ASSIGN_OR_RETURN(std::vector<TreeMatch> matches,
                        matcher.FindAllAtRoots(tp, candidates));
  Datum out = Datum::Set({});
  for (const TreeMatch& m : matches) {
    AQUA_ASSIGN_OR_RETURN(Tree y, MakeMatchPiece(tree, m, opts));
    out.SetInsert(Datum::Of(CloseAllPoints(y)));
  }
  return out;
}

}  // namespace aqua
