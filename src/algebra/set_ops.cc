#include "algebra/set_ops.h"

#include <algorithm>

namespace aqua {

EqFn IdentityEq() {
  return [](Oid a, Oid b) { return a == b; };
}

EqFn ShallowValueEq(const ObjectStore* store) {
  return [store](Oid a, Oid b) {
    if (a == b) return true;
    auto oa = store->Get(a);
    auto ob = store->Get(b);
    if (!oa.ok() || !ob.ok()) return false;
    if ((*oa)->type() != (*ob)->type()) return false;
    const auto& attrs_a = (*oa)->attrs();
    const auto& attrs_b = (*ob)->attrs();
    for (size_t i = 0; i < attrs_a.size(); ++i) {
      if (!attrs_a[i].Equals(attrs_b[i])) return false;
    }
    return true;
  };
}

namespace {
bool ContainsUnder(const OidSet& set, Oid x, const EqFn& eq) {
  for (Oid e : set) {
    if (eq(e, x)) return true;
  }
  return false;
}
}  // namespace

OidSet SetDistinct(const OidBag& elems, const EqFn& eq) {
  OidSet out;
  for (Oid e : elems) {
    if (!ContainsUnder(out, e, eq)) out.push_back(e);
  }
  return out;
}

OidSet SetUnion(const OidSet& a, const OidSet& b, const EqFn& eq) {
  OidSet out = SetDistinct(a, eq);
  for (Oid e : b) {
    if (!ContainsUnder(out, e, eq)) out.push_back(e);
  }
  return out;
}

OidSet SetIntersect(const OidSet& a, const OidSet& b, const EqFn& eq) {
  OidSet out;
  for (Oid e : SetDistinct(a, eq)) {
    if (ContainsUnder(b, e, eq)) out.push_back(e);
  }
  return out;
}

OidSet SetDifference(const OidSet& a, const OidSet& b, const EqFn& eq) {
  OidSet out;
  for (Oid e : SetDistinct(a, eq)) {
    if (!ContainsUnder(b, e, eq)) out.push_back(e);
  }
  return out;
}

OidSet SetSelect(const StoreView& store, const OidSet& set,
                 const PredicateRef& pred) {
  OidSet out;
  for (Oid e : set) {
    if (pred->Eval(store, e)) out.push_back(e);
  }
  return out;
}

Result<OidSet> SetApply(ObjectStore& store, const OidSet& set,
                        const MapFn& fn) {
  OidSet out;
  out.reserve(set.size());
  for (Oid e : set) {
    AQUA_ASSIGN_OR_RETURN(Oid mapped, fn(store, e));
    out.push_back(mapped);
  }
  return out;
}

Result<Value> SetFold(const StoreView& store, const OidSet& set, Value init,
                      const FoldFn& step) {
  (void)store;
  Value acc = std::move(init);
  for (Oid e : set) {
    AQUA_ASSIGN_OR_RETURN(acc, step(acc, e));
  }
  return acc;
}

OidBag BagUnion(const OidBag& a, const OidBag& b) {
  OidBag out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

OidBag BagIntersect(const OidBag& a, const OidBag& b, const EqFn& eq) {
  OidBag out;
  std::vector<bool> used(b.size(), false);
  for (Oid e : a) {
    for (size_t i = 0; i < b.size(); ++i) {
      if (!used[i] && eq(e, b[i])) {
        used[i] = true;
        out.push_back(e);
        break;
      }
    }
  }
  return out;
}

OidBag BagDifference(const OidBag& a, const OidBag& b, const EqFn& eq) {
  OidBag out;
  std::vector<bool> used(b.size(), false);
  for (Oid e : a) {
    // "eliminated", not "cancelled": this is bag-difference element
    // elimination, unrelated to query cancellation.
    bool eliminated = false;
    for (size_t i = 0; i < b.size(); ++i) {
      if (!used[i] && eq(e, b[i])) {
        used[i] = true;
        eliminated = true;
        break;
      }
    }
    if (!eliminated) out.push_back(e);
  }
  return out;
}

OidBag BagSelect(const StoreView& store, const OidBag& bag,
                 const PredicateRef& pred) {
  OidBag out;
  for (Oid e : bag) {
    if (pred->Eval(store, e)) out.push_back(e);
  }
  return out;
}

}  // namespace aqua
