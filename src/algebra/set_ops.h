#ifndef AQUA_ALGEBRA_SET_OPS_H_
#define AQUA_ALGEBRA_SET_OPS_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "object/object_store.h"
#include "pattern/predicate.h"

namespace aqua {

/// Equality over objects, passed as a parameter to set operators (§2:
/// "AQUA allows equality to be specified as a parameter to some of its
/// operators, thereby allowing queries to use various notions of equality").
using EqFn = std::function<bool(Oid, Oid)>;

/// Identity equality: two references are equal iff they are the same object.
EqFn IdentityEq();

/// Shallow value equality: same type and pairwise-equal stored attribute
/// values. The returned function retains `store`, which must outlive it.
EqFn ShallowValueEq(const ObjectStore* store);

/// A set of objects, represented as a duplicate-free vector in insertion
/// order (duplicate-freedom is relative to the equality used to build it).
using OidSet = std::vector<Oid>;
/// A multiset of objects (duplicates allowed).
using OidBag = std::vector<Oid>;

/// Returns `elems` with duplicates (under `eq`) removed, keeping first
/// occurrences.
OidSet SetDistinct(const OidBag& elems, const EqFn& eq);

/// Set union under `eq`; keeps `a`'s order then new elements of `b`.
OidSet SetUnion(const OidSet& a, const OidSet& b, const EqFn& eq);
/// Set intersection under `eq`, in `a`'s order.
OidSet SetIntersect(const OidSet& a, const OidSet& b, const EqFn& eq);
/// Set difference `a - b` under `eq`.
OidSet SetDifference(const OidSet& a, const OidSet& b, const EqFn& eq);

/// Filters by an alphabet-predicate, preserving order.
OidSet SetSelect(const StoreView& store, const OidSet& set,
                 const PredicateRef& pred);

/// A function applied per element by `apply`; may create objects.
using MapFn = std::function<Result<Oid>(ObjectStore&, Oid)>;

/// Applies `fn` to every element.
Result<OidSet> SetApply(ObjectStore& store, const OidSet& set,
                        const MapFn& fn);

/// Left fold over the elements (the AQUA `fold` for unordered bulk types).
using FoldFn = std::function<Result<Value>(const Value&, Oid)>;
Result<Value> SetFold(const StoreView& store, const OidSet& set, Value init,
                      const FoldFn& step);

/// Bag (multiset) operators. Union is additive; intersection and difference
/// use minimum / saturating counts under `eq`.
OidBag BagUnion(const OidBag& a, const OidBag& b);
OidBag BagIntersect(const OidBag& a, const OidBag& b, const EqFn& eq);
OidBag BagDifference(const OidBag& a, const OidBag& b, const EqFn& eq);
OidBag BagSelect(const StoreView& store, const OidBag& bag,
                 const PredicateRef& pred);

}  // namespace aqua

#endif  // AQUA_ALGEBRA_SET_OPS_H_
