#ifndef AQUA_ALGEBRA_FOLD_H_
#define AQUA_ALGEBRA_FOLD_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "bulk/list.h"
#include "bulk/tree.h"

namespace aqua {

// The AQUA base algebra's `fold` for ordered types. §4 remarks that `split`
// "may be viewed as an order-preserving analog for fold that is based on
// pattern matching"; these are the plain structural folds that remark
// compares against.

/// Bottom-up tree fold (catamorphism): `combine` receives a node's payload
/// and its children's results, left to right.
using TreeFoldFn = std::function<Result<Value>(
    const NodePayload&, const std::vector<Value>& child_results)>;

/// Folds the whole tree; the empty tree folds to `empty_value`.
Result<Value> TreeFold(const Tree& tree, const TreeFoldFn& combine,
                       Value empty_value = Value::Null());

/// Left list fold: `step(acc, element)` over elements in order.
using ListFoldFn =
    std::function<Result<Value>(const Value& acc, const NodePayload&)>;
Result<Value> ListFoldLeft(const List& list, Value init,
                           const ListFoldFn& step);

/// Right list fold: `step(element, acc)` from the last element backwards.
using ListFoldRightFn =
    std::function<Result<Value>(const NodePayload&, const Value& acc)>;
Result<Value> ListFoldRight(const List& list, Value init,
                            const ListFoldRightFn& step);

}  // namespace aqua

#endif  // AQUA_ALGEBRA_FOLD_H_
