#include "algebra/fn_expr.h"

#include <algorithm>
#include <set>

#include "common/status.h"
#include "object/schema.h"

namespace aqua {

const char* FnEffectToString(FnEffect e) {
  switch (e) {
    case FnEffect::kPure:
      return "pure";
    case FnEffect::kReadOnly:
      return "read-only";
    case FnEffect::kStoreWrite:
      return "store-mutating";
    case FnEffect::kOpaque:
      return "opaque";
  }
  return "?";
}

bool FnEffectParallelSafe(FnEffect e) {
  return e == FnEffect::kPure || e == FnEffect::kReadOnly;
}

FnExprRef FnExpr::Identity() {
  static const FnExprRef kIdentity(new FnExpr(Kind::kIdentity));
  return kIdentity;
}

FnExprRef FnExpr::Const(Oid oid) {
  auto e = std::shared_ptr<FnExpr>(new FnExpr(Kind::kConst));
  e->const_oid_ = oid;
  return e;
}

FnExprRef FnExpr::Choose(PredicateRef guard, FnExprRef then_expr,
                         FnExprRef else_expr) {
  auto e = std::shared_ptr<FnExpr>(new FnExpr(Kind::kChoose));
  e->guard_ = std::move(guard);
  e->a_ = std::move(then_expr);
  e->b_ = std::move(else_expr);
  return e;
}

FnExprRef FnExpr::Update(std::vector<FnAttrSet> sets) {
  auto e = std::shared_ptr<FnExpr>(new FnExpr(Kind::kUpdate));
  e->sets_ = std::move(sets);
  return e;
}

FnExprRef FnExpr::SetAttr(std::vector<FnAttrSet> sets) {
  auto e = std::shared_ptr<FnExpr>(new FnExpr(Kind::kSetAttr));
  e->sets_ = std::move(sets);
  return e;
}

FnExprRef FnExpr::Compose(FnExprRef outer, FnExprRef inner) {
  if (outer == nullptr) return inner != nullptr ? inner : Identity();
  if (inner == nullptr) return outer;
  // id ∘ f == f ∘ id == f: keep compositions in normal form so effect and
  // rendering stay minimal (the apply-fusion rewrite composes freely).
  if (outer->kind_ == Kind::kIdentity) return inner;
  if (inner->kind_ == Kind::kIdentity) return outer;
  auto e = std::shared_ptr<FnExpr>(new FnExpr(Kind::kCompose));
  e->a_ = std::move(outer);
  e->b_ = std::move(inner);
  return e;
}

namespace {

FnEffect MaxEffect(FnEffect a, FnEffect b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

FnEffect EffectOf(const FnExpr* e) {
  if (e == nullptr) return FnEffect::kPure;  // absent subtree == identity
  return e->effect();
}

}  // namespace

FnEffect FnExpr::effect() const {
  switch (kind_) {
    case Kind::kIdentity:
    case Kind::kConst:
      return FnEffect::kPure;
    case Kind::kChoose:
      // The guard reads attributes (Predicate::Eval is const over the
      // store); a null guard is `true`, which reads nothing.
      return MaxEffect(guard_ != nullptr ? FnEffect::kReadOnly
                                         : FnEffect::kPure,
                       MaxEffect(EffectOf(a_.get()), EffectOf(b_.get())));
    case Kind::kUpdate:
    case Kind::kSetAttr:
      return FnEffect::kStoreWrite;
    case Kind::kCompose:
      return MaxEffect(EffectOf(a_.get()), EffectOf(b_.get()));
  }
  return FnEffect::kOpaque;
}

Result<Oid> FnExpr::Eval(StoreTxn& txn, Oid oid) const {
  switch (kind_) {
    case Kind::kIdentity:
      return oid;
    case Kind::kConst:
      return const_oid_;
    case Kind::kChoose: {
      bool taken = guard_ == nullptr || guard_->Eval(txn, oid);
      const FnExprRef& branch = taken ? a_ : b_;
      if (branch == nullptr) return oid;  // absent branch == identity
      return branch->Eval(txn, oid);
    }
    case Kind::kUpdate: {
      AQUA_ASSIGN_OR_RETURN(const Object* obj, txn.Get(oid));
      AQUA_ASSIGN_OR_RETURN(const TypeDef* type,
                            txn.schema().GetType(obj->type()));
      std::vector<Value> attrs = obj->attrs();
      for (const FnAttrSet& s : sets_) {
        AQUA_ASSIGN_OR_RETURN(size_t idx, type->AttrIndex(s.attr));
        attrs[idx] = s.value;
      }
      return txn.Create(obj->type(), std::move(attrs));
    }
    case Kind::kSetAttr: {
      for (const FnAttrSet& s : sets_) {
        AQUA_RETURN_IF_ERROR(txn.SetAttr(oid, s.attr, s.value));
      }
      return oid;
    }
    case Kind::kCompose: {
      AQUA_ASSIGN_OR_RETURN(Oid mid,
                            b_ != nullptr ? b_->Eval(txn, oid)
                                          : Result<Oid>(oid));
      return a_ != nullptr ? a_->Eval(txn, mid) : Result<Oid>(mid);
    }
  }
  return Status::Internal("unhandled FnExpr kind");
}

namespace {

std::string RenderSets(const char* name, const std::vector<FnAttrSet>& sets) {
  std::string out = name;
  out += "(";
  for (size_t i = 0; i < sets.size(); ++i) {
    if (i > 0) out += ", ";
    out += sets[i].attr + "=" + sets[i].value.ToString();
  }
  return out + ")";
}

}  // namespace

std::string FnExpr::ToString() const {
  switch (kind_) {
    case Kind::kIdentity:
      return "id";
    case Kind::kConst:
      return "const#" + std::to_string(const_oid_.value);
    case Kind::kChoose: {
      std::string out = "choose(";
      out += guard_ != nullptr ? "{" + guard_->ToString() + "}" : "true";
      out += ", ";
      out += a_ != nullptr ? a_->ToString() : "id";
      out += ", ";
      out += b_ != nullptr ? b_->ToString() : "id";
      return out + ")";
    }
    case Kind::kUpdate:
      return RenderSets("update", sets_);
    case Kind::kSetAttr:
      return RenderSets("set_attr", sets_);
    case Kind::kCompose:
      return (a_ != nullptr ? a_->ToString() : "id") + " . " +
             (b_ != nullptr ? b_->ToString() : "id");
  }
  return "?";
}

FnEffect FnExprEffect(const FnExprRef& expr) {
  return expr == nullptr ? FnEffect::kOpaque : expr->effect();
}

// ---------------------------------------------------------------------------
// Snapshot order-dependence analysis

namespace {

/// Can the *output* of `e` be an object that existed before the query
/// (given whether the input can)? `const` always yields a pre-existing
/// object; `update` always a fresh one; pass-through nodes propagate.
bool MayOutputPreexisting(const FnExpr* e, bool input_may_pre) {
  if (e == nullptr) return input_may_pre;  // absent subtree == identity
  switch (e->kind()) {
    case FnExpr::Kind::kIdentity:
    case FnExpr::Kind::kSetAttr:
      return input_may_pre;
    case FnExpr::Kind::kConst:
      return true;
    case FnExpr::Kind::kUpdate:
      return false;
    case FnExpr::Kind::kChoose:
      return MayOutputPreexisting(e->then_expr().get(), input_may_pre) ||
             MayOutputPreexisting(e->else_expr().get(), input_may_pre);
    case FnExpr::Kind::kCompose:
      return MayOutputPreexisting(
          e->outer().get(),
          MayOutputPreexisting(e->inner().get(), input_may_pre));
  }
  return true;
}

struct AccessSets {
  std::set<std::string> reads;        // attrs read from pre-existing objects
  bool reads_all = false;             // an update copies its whole input
  std::set<std::string> inplace_writes;  // attrs set_attr'd on pre-existing
};

/// Collects the cross-item-visible accesses: reads of, and in-place writes
/// to, objects that may predate the query. Accesses to objects the
/// expression itself created are txn-local and ignored — they cannot be
/// observed by any other item, serially or not.
void CollectAccesses(const FnExpr* e, bool input_may_pre, AccessSets* out) {
  if (e == nullptr) return;
  switch (e->kind()) {
    case FnExpr::Kind::kIdentity:
    case FnExpr::Kind::kConst:
      return;
    case FnExpr::Kind::kChoose: {
      if (e->guard() != nullptr && input_may_pre) {
        std::vector<std::string> attrs;
        e->guard()->CollectAttrs(&attrs);
        out->reads.insert(attrs.begin(), attrs.end());
      }
      CollectAccesses(e->then_expr().get(), input_may_pre, out);
      CollectAccesses(e->else_expr().get(), input_may_pre, out);
      return;
    }
    case FnExpr::Kind::kUpdate:
      if (input_may_pre) out->reads_all = true;
      return;
    case FnExpr::Kind::kSetAttr:
      if (input_may_pre) {
        for (const FnAttrSet& s : e->sets()) out->inplace_writes.insert(s.attr);
      }
      return;
    case FnExpr::Kind::kCompose:
      CollectAccesses(e->inner().get(), input_may_pre, out);
      CollectAccesses(
          e->outer().get(),
          MayOutputPreexisting(e->inner().get(), input_may_pre), out);
      return;
  }
}

}  // namespace

FnSnapshotSafety FnExprSnapshotSafety(const FnExprRef& expr) {
  FnSnapshotSafety verdict;
  if (expr == nullptr) {
    verdict.safe = false;
    verdict.conflict = "opaque function: effects are unknown";
    return verdict;
  }
  // Apply input cells are objects that existed when the query opened its
  // snapshot, so the analysis starts with a possibly-pre-existing input.
  AccessSets sets;
  CollectAccesses(expr.get(), /*input_may_pre=*/true, &sets);
  if (sets.inplace_writes.empty()) {
    verdict.safe = true;  // only fresh copies: nothing cross-item-visible
    return verdict;
  }
  if (sets.reads_all) {
    verdict.safe = false;
    verdict.conflict =
        "update copies every attribute of a pre-existing object while '" +
        *sets.inplace_writes.begin() + "' is written in place";
    return verdict;
  }
  for (const std::string& attr : sets.inplace_writes) {
    if (sets.reads.count(attr) != 0) {
      verdict.safe = false;
      verdict.conflict = "attribute '" + attr +
                         "' is both read by a guard and written in place";
      return verdict;
    }
  }
  verdict.safe = true;
  return verdict;
}

}  // namespace aqua
