#include "algebra/fn_expr.h"

#include <algorithm>

#include "common/status.h"
#include "object/schema.h"

namespace aqua {

const char* FnEffectToString(FnEffect e) {
  switch (e) {
    case FnEffect::kPure:
      return "pure";
    case FnEffect::kReadOnly:
      return "read-only";
    case FnEffect::kStoreWrite:
      return "store-mutating";
    case FnEffect::kOpaque:
      return "opaque";
  }
  return "?";
}

bool FnEffectParallelSafe(FnEffect e) {
  return e == FnEffect::kPure || e == FnEffect::kReadOnly;
}

FnExprRef FnExpr::Identity() {
  static const FnExprRef kIdentity(new FnExpr(Kind::kIdentity));
  return kIdentity;
}

FnExprRef FnExpr::Const(Oid oid) {
  auto e = std::shared_ptr<FnExpr>(new FnExpr(Kind::kConst));
  e->const_oid_ = oid;
  return e;
}

FnExprRef FnExpr::Choose(PredicateRef guard, FnExprRef then_expr,
                         FnExprRef else_expr) {
  auto e = std::shared_ptr<FnExpr>(new FnExpr(Kind::kChoose));
  e->guard_ = std::move(guard);
  e->a_ = std::move(then_expr);
  e->b_ = std::move(else_expr);
  return e;
}

FnExprRef FnExpr::Update(std::vector<FnAttrSet> sets) {
  auto e = std::shared_ptr<FnExpr>(new FnExpr(Kind::kUpdate));
  e->sets_ = std::move(sets);
  return e;
}

FnExprRef FnExpr::Compose(FnExprRef outer, FnExprRef inner) {
  if (outer == nullptr) return inner != nullptr ? inner : Identity();
  if (inner == nullptr) return outer;
  // id ∘ f == f ∘ id == f: keep compositions in normal form so effect and
  // rendering stay minimal (the apply-fusion rewrite composes freely).
  if (outer->kind_ == Kind::kIdentity) return inner;
  if (inner->kind_ == Kind::kIdentity) return outer;
  auto e = std::shared_ptr<FnExpr>(new FnExpr(Kind::kCompose));
  e->a_ = std::move(outer);
  e->b_ = std::move(inner);
  return e;
}

namespace {

FnEffect MaxEffect(FnEffect a, FnEffect b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

FnEffect EffectOf(const FnExpr* e) {
  if (e == nullptr) return FnEffect::kPure;  // absent subtree == identity
  return e->effect();
}

}  // namespace

FnEffect FnExpr::effect() const {
  switch (kind_) {
    case Kind::kIdentity:
    case Kind::kConst:
      return FnEffect::kPure;
    case Kind::kChoose:
      // The guard reads attributes (Predicate::Eval is const over the
      // store); a null guard is `true`, which reads nothing.
      return MaxEffect(guard_ != nullptr ? FnEffect::kReadOnly
                                         : FnEffect::kPure,
                       MaxEffect(EffectOf(a_.get()), EffectOf(b_.get())));
    case Kind::kUpdate:
      return FnEffect::kStoreWrite;
    case Kind::kCompose:
      return MaxEffect(EffectOf(a_.get()), EffectOf(b_.get()));
  }
  return FnEffect::kOpaque;
}

Result<Oid> FnExpr::Eval(ObjectStore& store, Oid oid) const {
  switch (kind_) {
    case Kind::kIdentity:
      return oid;
    case Kind::kConst:
      return const_oid_;
    case Kind::kChoose: {
      bool taken = guard_ == nullptr || guard_->Eval(store, oid);
      const FnExprRef& branch = taken ? a_ : b_;
      if (branch == nullptr) return oid;  // absent branch == identity
      return branch->Eval(store, oid);
    }
    case Kind::kUpdate: {
      AQUA_ASSIGN_OR_RETURN(const Object* obj, store.Get(oid));
      AQUA_ASSIGN_OR_RETURN(const TypeDef* type,
                            store.schema().GetType(obj->type()));
      std::vector<Value> attrs = obj->attrs();
      for (const FnAttrSet& s : sets_) {
        AQUA_ASSIGN_OR_RETURN(size_t idx, type->AttrIndex(s.attr));
        attrs[idx] = s.value;
      }
      return store.Create(obj->type(), std::move(attrs));
    }
    case Kind::kCompose: {
      AQUA_ASSIGN_OR_RETURN(Oid mid,
                            b_ != nullptr ? b_->Eval(store, oid)
                                          : Result<Oid>(oid));
      return a_ != nullptr ? a_->Eval(store, mid) : Result<Oid>(mid);
    }
  }
  return Status::Internal("unhandled FnExpr kind");
}

std::string FnExpr::ToString() const {
  switch (kind_) {
    case Kind::kIdentity:
      return "id";
    case Kind::kConst:
      return "const#" + std::to_string(const_oid_.value);
    case Kind::kChoose: {
      std::string out = "choose(";
      out += guard_ != nullptr ? "{" + guard_->ToString() + "}" : "true";
      out += ", ";
      out += a_ != nullptr ? a_->ToString() : "id";
      out += ", ";
      out += b_ != nullptr ? b_->ToString() : "id";
      return out + ")";
    }
    case Kind::kUpdate: {
      std::string out = "update(";
      for (size_t i = 0; i < sets_.size(); ++i) {
        if (i > 0) out += ", ";
        out += sets_[i].attr + "=" + sets_[i].value.ToString();
      }
      return out + ")";
    }
    case Kind::kCompose:
      return (a_ != nullptr ? a_->ToString() : "id") + " . " +
             (b_ != nullptr ? b_->ToString() : "id");
  }
  return "?";
}

FnEffect FnExprEffect(const FnExprRef& expr) {
  return expr == nullptr ? FnEffect::kOpaque : expr->effect();
}

}  // namespace aqua
