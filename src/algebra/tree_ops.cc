#include "algebra/tree_ops.h"

#include <unordered_map>
#include <unordered_set>

#include "bulk/concat.h"

namespace aqua {

namespace {

/// Shared piece-builder: copies the match subgraph, substituting labeled
/// points at cut positions.
class PieceBuilder {
 public:
  PieceBuilder(const Tree& tree, const TreeMatch& match,
               const SplitOptions& opts)
      : tree_(tree), opts_(opts) {
    for (NodeId m : match.matched) matched_.insert(m);
    for (size_t i = 0; i < match.cuts.size(); ++i) {
      cut_index_.emplace(match.cuts[i].node, i);
    }
  }

  Result<Tree> BuildY(NodeId match_root) {
    Tree y;
    AQUA_ASSIGN_OR_RETURN(NodeId root, Copy(&y, match_root));
    AQUA_RETURN_IF_ERROR(y.SetRoot(root));
    return y;
  }

 private:
  Result<NodeId> Copy(Tree* dst, NodeId v) {
    auto cut = cut_index_.find(v);
    if (cut != cut_index_.end()) {
      return dst->AddNode(NodePayload::ConcatPoint(
          opts_.cut_prefix + std::to_string(cut->second + 1)));
    }
    if (matched_.count(v) == 0) {
      return Status::Internal(
          "match piece contains a node that is neither matched nor cut");
    }
    NodeId copy = dst->AddNode(tree_.payload(v));
    for (NodeId c : tree_.children(v)) {
      AQUA_ASSIGN_OR_RETURN(NodeId cc, Copy(dst, c));
      AQUA_RETURN_IF_ERROR(dst->AddChild(copy, cc));
    }
    return copy;
  }

  const Tree& tree_;
  const SplitOptions& opts_;
  std::unordered_set<NodeId> matched_;
  std::unordered_map<NodeId, size_t> cut_index_;
};

}  // namespace

Result<Tree> MakeMatchPiece(const Tree& tree, const TreeMatch& match,
                            const SplitOptions& opts) {
  PieceBuilder builder(tree, match, opts);
  return builder.BuildY(match.root);
}

Result<SplitPieces> MakeSplitPieces(const Tree& tree, const TreeMatch& match,
                                    const SplitOptions& opts) {
  SplitPieces pieces;
  pieces.x = tree.CopyWithSubtreeReplacedByPoint(match.root,
                                                 opts.context_label);
  AQUA_ASSIGN_OR_RETURN(pieces.y, MakeMatchPiece(tree, match, opts));
  pieces.z.reserve(match.cuts.size());
  for (const TreeCut& cut : match.cuts) {
    pieces.z.push_back(tree.SubtreeCopy(cut.node));
  }
  return pieces;
}

Tree ReassembleSplit(const SplitPieces& pieces, const SplitOptions& opts) {
  Tree t = ConcatAt(pieces.x, opts.context_label, pieces.y);
  for (size_t i = 0; i < pieces.z.size(); ++i) {
    t = ConcatAt(t, opts.cut_prefix + std::to_string(i + 1), pieces.z[i]);
  }
  return t;
}

Result<std::vector<Tree>> TreeSelect(const StoreView& store,
                                     const Tree& tree,
                                     const PredicateRef& pred) {
  if (pred == nullptr) return Status::InvalidArgument("null predicate");
  std::vector<Tree> forest;
  if (tree.empty()) return forest;

  // Phase 1: find, under each node, the topmost satisfying nodes.
  // Phase 2: build one result tree per satisfying node whose kept children
  // are the topmost satisfying nodes under each of its subtrees.
  struct Builder {
    const StoreView& store;
    const Tree& tree;
    const Predicate& pred;

    bool Satisfies(NodeId v) const {
      const NodePayload& p = tree.payload(v);
      return p.is_cell() && pred.Eval(store, p.oid());
    }

    // Topmost satisfying nodes in the subtree rooted at v, left to right.
    void Topmost(NodeId v, std::vector<NodeId>* out) const {
      if (Satisfies(v)) {
        out->push_back(v);
        return;
      }
      for (NodeId c : tree.children(v)) Topmost(c, out);
    }

    NodeId Build(Tree* dst, NodeId v) const {
      NodeId copy = dst->AddNode(tree.payload(v));
      std::vector<NodeId> kept_children;
      for (NodeId c : tree.children(v)) Topmost(c, &kept_children);
      for (NodeId kc : kept_children) {
        NodeId built = Build(dst, kc);
        Status st = dst->AddChild(copy, built);
        (void)st;
      }
      return copy;
    }
  };
  Builder builder{store, tree, *pred};
  std::vector<NodeId> roots;
  builder.Topmost(tree.root(), &roots);
  forest.reserve(roots.size());
  for (NodeId r : roots) {
    Tree t;
    NodeId built = builder.Build(&t, r);
    Status st = t.SetRoot(built);
    (void)st;
    forest.push_back(std::move(t));
  }
  return forest;
}

Result<Tree> TreeApply(ObjectStore& store, const Tree& tree,
                       const NodeFn& fn) {
  if (tree.empty()) return Tree();
  struct Mapper {
    ObjectStore& store;
    const Tree& tree;
    const NodeFn& fn;
    Result<NodeId> Map(Tree* dst, NodeId v) {
      const NodePayload& p = tree.payload(v);
      NodeId copy;
      if (p.is_cell()) {
        AQUA_ASSIGN_OR_RETURN(Oid mapped, fn(store, p.oid()));
        copy = dst->AddNode(NodePayload::Cell(mapped));
      } else {
        copy = dst->AddNode(p);
      }
      for (NodeId c : tree.children(v)) {
        AQUA_ASSIGN_OR_RETURN(NodeId cc, Map(dst, c));
        AQUA_RETURN_IF_ERROR(dst->AddChild(copy, cc));
      }
      return copy;
    }
  };
  Mapper mapper{store, tree, fn};
  Tree out;
  AQUA_ASSIGN_OR_RETURN(NodeId root, mapper.Map(&out, tree.root()));
  AQUA_RETURN_IF_ERROR(out.SetRoot(root));
  return out;
}

Result<Tree> TreeApplyTxn(StoreTxn& txn, const Tree& tree,
                          const TxnNodeFn& fn) {
  if (tree.empty()) return Tree();
  struct Mapper {
    StoreTxn& txn;
    const Tree& tree;
    const TxnNodeFn& fn;
    Result<NodeId> Map(Tree* dst, NodeId v) {
      const NodePayload& p = tree.payload(v);
      NodeId copy;
      if (p.is_cell()) {
        AQUA_ASSIGN_OR_RETURN(Oid mapped, fn(txn, p.oid()));
        copy = dst->AddNode(NodePayload::Cell(mapped));
      } else {
        copy = dst->AddNode(p);
      }
      for (NodeId c : tree.children(v)) {
        AQUA_ASSIGN_OR_RETURN(NodeId cc, Map(dst, c));
        AQUA_RETURN_IF_ERROR(dst->AddChild(copy, cc));
      }
      return copy;
    }
  };
  Mapper mapper{txn, tree, fn};
  Tree out;
  AQUA_ASSIGN_OR_RETURN(NodeId root, mapper.Map(&out, tree.root()));
  AQUA_RETURN_IF_ERROR(out.SetRoot(root));
  return out;
}

Result<Datum> TreeSplit(const StoreView& store, const Tree& tree,
                        const TreePatternRef& tp, const SplitFn& fn,
                        const SplitOptions& opts) {
  TreeMatcher matcher(store, tree, opts.match);
  AQUA_ASSIGN_OR_RETURN(std::vector<TreeMatch> matches, matcher.FindAll(tp));
  Datum out = Datum::Set({});
  for (const TreeMatch& m : matches) {
    AQUA_ASSIGN_OR_RETURN(SplitPieces pieces, MakeSplitPieces(tree, m, opts));
    AQUA_ASSIGN_OR_RETURN(Datum result, fn(pieces.x, pieces.y, pieces.z));
    out.SetInsert(std::move(result));
  }
  return out;
}

Result<Datum> TreeSubSelect(const StoreView& store, const Tree& tree,
                            const TreePatternRef& tp,
                            const SplitOptions& opts) {
  TreeMatcher matcher(store, tree, opts.match);
  AQUA_ASSIGN_OR_RETURN(std::vector<TreeMatch> matches, matcher.FindAll(tp));
  Datum out = Datum::Set({});
  for (const TreeMatch& m : matches) {
    AQUA_ASSIGN_OR_RETURN(Tree y, MakeMatchPiece(tree, m, opts));
    out.SetInsert(Datum::Of(CloseAllPoints(y)));
  }
  return out;
}

Result<Datum> TreeAllAnc(const StoreView& store, const Tree& tree,
                         const TreePatternRef& tp, const AncFn& fn,
                         const SplitOptions& opts) {
  TreeMatcher matcher(store, tree, opts.match);
  AQUA_ASSIGN_OR_RETURN(std::vector<TreeMatch> matches, matcher.FindAll(tp));
  Datum out = Datum::Set({});
  for (const TreeMatch& m : matches) {
    Tree x = tree.CopyWithSubtreeReplacedByPoint(m.root, opts.context_label);
    AQUA_ASSIGN_OR_RETURN(Tree y, MakeMatchPiece(tree, m, opts));
    AQUA_ASSIGN_OR_RETURN(Datum result, fn(x, CloseAllPoints(y)));
    out.SetInsert(std::move(result));
  }
  return out;
}

Result<Datum> TreeAllDesc(const StoreView& store, const Tree& tree,
                          const TreePatternRef& tp, const DescFn& fn,
                          const SplitOptions& opts) {
  TreeMatcher matcher(store, tree, opts.match);
  AQUA_ASSIGN_OR_RETURN(std::vector<TreeMatch> matches, matcher.FindAll(tp));
  Datum out = Datum::Set({});
  for (const TreeMatch& m : matches) {
    AQUA_ASSIGN_OR_RETURN(Tree y, MakeMatchPiece(tree, m, opts));
    std::vector<Tree> z;
    z.reserve(m.cuts.size());
    for (const TreeCut& cut : m.cuts) z.push_back(tree.SubtreeCopy(cut.node));
    AQUA_ASSIGN_OR_RETURN(Datum result, fn(y, z));
    out.SetInsert(std::move(result));
  }
  return out;
}

}  // namespace aqua
