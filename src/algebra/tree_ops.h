#ifndef AQUA_ALGEBRA_TREE_OPS_H_
#define AQUA_ALGEBRA_TREE_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "object/object_store.h"
#include "bulk/datum.h"
#include "bulk/tree.h"
#include "pattern/predicate.h"
#include "pattern/tree_matcher.h"
#include "pattern/tree_pattern.h"

namespace aqua {

/// Per-node mapping function used by `apply`; may create objects.
using NodeFn = std::function<Result<Oid>(ObjectStore&, Oid)>;

/// Per-node mapping over a store transaction — the surface the versioned
/// executor drives: `DirectTxn` lands on the head (serial path), `DeltaTxn`
/// buffers writes against a snapshot (parallel certified path).
using TxnNodeFn = std::function<Result<Oid>(StoreTxn&, Oid)>;

/// The function parameter of `split`: applied to the three pieces —
/// ancestors-context `x`, match `y`, and cut subtrees `z` (§4).
using SplitFn = std::function<Result<Datum>(
    const Tree& x, const Tree& y, const std::vector<Tree>& z)>;

/// Options controlling `split` and the operators derived from it.
struct SplitOptions {
  /// Label of the point marking where the match attaches to its ancestors
  /// (the paper's α).
  std::string context_label = "a";
  /// Cut points are labeled `<cut_prefix>1`, `<cut_prefix>2`, ... in the
  /// order they appear in the match piece (the paper's α1..αn).
  std::string cut_prefix = "a";
  /// Matching options (memoization, enumeration bounds).
  TreeMatchOptions match;
};

/// The three pieces `split` produces for one match.
struct SplitPieces {
  /// All ancestors of the match and their descendants, except the match
  /// itself; a point labeled `context_label` marks the match position.
  Tree x;
  /// The match, with points `α1..αn` where subtrees were cut.
  Tree y;
  /// The cut subtrees, in `α1..αn` order.
  std::vector<Tree> z;
};

/// Builds the (x, y, z) pieces for one enumerated match.
Result<SplitPieces> MakeSplitPieces(const Tree& tree, const TreeMatch& match,
                                    const SplitOptions& opts = {});

/// Builds only the match piece `y` (cheaper path used by `sub_select`).
Result<Tree> MakeMatchPiece(const Tree& tree, const TreeMatch& match,
                            const SplitOptions& opts = {});

/// `select(p)(T)` (§4): keeps exactly the nodes satisfying `p`, preserving
/// the ancestor ordering between every pair of kept nodes; an edge is drawn
/// between kept nodes when no kept node lies strictly between them. Returns
/// a forest (one tree per kept node with no kept proper ancestor).
/// Concatenation-point nodes are invisible to predicates and are contracted.
Result<std::vector<Tree>> TreeSelect(const StoreView& store,
                                     const Tree& tree,
                                     const PredicateRef& pred);

/// `apply(f)(T)` (§4): maps every cell through `f`, yielding an isomorphic
/// tree; point nodes are copied unchanged.
Result<Tree> TreeApply(ObjectStore& store, const Tree& tree, const NodeFn& fn);

/// `apply` over a transaction: same cell-by-cell mapping, but reads and
/// writes go through `txn`. With a `DeltaTxn`, created objects surface as
/// provisional oids in the result tree until the delta commits.
Result<Tree> TreeApplyTxn(StoreTxn& txn, const Tree& tree,
                          const TxnNodeFn& fn);

/// `split(tp, f)(T)` (§4), the primitive ordered-tree operator: for every
/// match of `tp` in `T`, applies `f` to the pieces (x, y, z) and returns the
/// set of results.
Result<Datum> TreeSplit(const StoreView& store, const Tree& tree,
                        const TreePatternRef& tp, const SplitFn& fn,
                        const SplitOptions& opts = {});

/// `sub_select(tp)(T)` (§4): the set of subgraphs of `T` matching `tp`
/// (match pieces with all points closed by NULL). Direct implementation that
/// skips building x and z.
Result<Datum> TreeSubSelect(const StoreView& store, const Tree& tree,
                            const TreePatternRef& tp,
                            const SplitOptions& opts = {});

/// The function parameter of `all_anc` / `all_desc`.
using AncFn =
    std::function<Result<Datum>(const Tree& ancestors, const Tree& match)>;
using DescFn = std::function<Result<Datum>(const Tree& match,
                                           const std::vector<Tree>& desc)>;

/// `all_anc(tp, f)(T)` (§4): per match, `f(x, y ∘_{α1..αn} [])` — the
/// ancestors context (still carrying its α point) and the closed match.
Result<Datum> TreeAllAnc(const StoreView& store, const Tree& tree,
                         const TreePatternRef& tp, const AncFn& fn,
                         const SplitOptions& opts = {});

/// `all_desc(tp, f)(T)` (§4): per match, `f(y, z)` — the match (with its
/// cut points) and the list of descendant/pruned subtrees.
Result<Datum> TreeAllDesc(const StoreView& store, const Tree& tree,
                          const TreePatternRef& tp, const DescFn& fn,
                          const SplitOptions& opts = {});

/// Reassembles `x ∘_α y ∘_{α1} z1 ... ∘_{αn} zn` — the inverse of `split`
/// for pieces produced with `opts`. Used by tests and by rewrite examples
/// that edit `y` before reattaching (§5).
Tree ReassembleSplit(const SplitPieces& pieces, const SplitOptions& opts = {});

}  // namespace aqua

#endif  // AQUA_ALGEBRA_TREE_OPS_H_
