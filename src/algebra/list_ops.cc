#include "algebra/list_ops.h"

#include "bulk/concat.h"
#include "obs/metrics.h"
#include "pattern/dfa.h"
#include "pattern/nfa.h"

namespace aqua {

ListSplitPieces MakeListSplitPieces(const List& list, const ListMatch& match,
                                    const ListSplitOptions& opts) {
  ListSplitPieces pieces;
  // x: prefix ending in the context point.
  pieces.x = list.Sublist(0, match.begin);
  pieces.x.Append(NodePayload::ConcatPoint(opts.context_label));

  // y: matched elements with each maximal pruned run replaced by a point;
  // the suffix (descendants in the list-like-tree view) becomes a final cut.
  auto ranges = match.PruneRanges();
  size_t cut = 0;
  size_t next_range = 0;
  for (size_t i = match.begin; i < match.end; ++i) {
    if (next_range < ranges.size() && i == ranges[next_range].first) {
      pieces.y.Append(NodePayload::ConcatPoint(
          opts.cut_prefix + std::to_string(++cut)));
      pieces.z.push_back(
          list.Sublist(ranges[next_range].first, ranges[next_range].second));
      i = ranges[next_range].second - 1;  // loop ++ moves past the run
      ++next_range;
    } else {
      pieces.y.Append(list.at(i));
    }
  }
  if (match.end < list.size()) {
    pieces.y.Append(NodePayload::ConcatPoint(
        opts.cut_prefix + std::to_string(++cut)));
    pieces.z.push_back(list.Sublist(match.end, list.size()));
  }
  return pieces;
}

List ReassembleListSplit(const ListSplitPieces& pieces,
                         const ListSplitOptions& opts) {
  List out = ConcatAt(pieces.x, opts.context_label, pieces.y);
  for (size_t i = 0; i < pieces.z.size(); ++i) {
    out = ConcatAt(out, opts.cut_prefix + std::to_string(i + 1), pieces.z[i]);
  }
  return out;
}

Result<List> ListSelect(const StoreView& store, const List& list,
                        const PredicateRef& pred) {
  if (pred == nullptr) return Status::InvalidArgument("null predicate");
  List out;
  for (const auto& e : list.elems()) {
    if (e.is_cell() && pred->Eval(store, e.oid())) out.Append(e);
  }
  return out;
}

Result<List> ListApply(ObjectStore& store, const List& list,
                       const ListNodeFn& fn) {
  List out;
  for (const auto& e : list.elems()) {
    if (e.is_cell()) {
      AQUA_ASSIGN_OR_RETURN(Oid mapped, fn(store, e.oid()));
      out.Append(NodePayload::Cell(mapped));
    } else {
      out.Append(e);
    }
  }
  return out;
}

Result<List> ListApplyTxn(StoreTxn& txn, const List& list,
                          const ListTxnNodeFn& fn) {
  List out;
  for (const auto& e : list.elems()) {
    if (e.is_cell()) {
      AQUA_ASSIGN_OR_RETURN(Oid mapped, fn(txn, e.oid()));
      out.Append(NodePayload::Cell(mapped));
    } else {
      out.Append(e);
    }
  }
  return out;
}

Result<Datum> ListSplit(const StoreView& store, const List& list,
                        const AnchoredListPattern& lp, const ListSplitFn& fn,
                        const ListSplitOptions& opts) {
  ListMatcher matcher(store, list);
  AQUA_ASSIGN_OR_RETURN(std::vector<ListMatch> matches,
                        matcher.FindAll(lp, opts.match));
  Datum out = Datum::Set({});
  for (const ListMatch& m : matches) {
    ListSplitPieces pieces = MakeListSplitPieces(list, m, opts);
    AQUA_ASSIGN_OR_RETURN(Datum result, fn(pieces.x, pieces.y, pieces.z));
    out.SetInsert(std::move(result));
  }
  return out;
}

Result<Datum> ListSubSelect(const StoreView& store, const List& list,
                            const AnchoredListPattern& lp,
                            const ListSplitOptions& opts) {
  // NFA existence prefilter: the Thompson NFA's language is a superset of
  // the backtracking matcher's matches (pruning shapes results, not the
  // language; anchors only narrow it), so a negative single-pass scan
  // proves there is no match and skips backtracking entirely. Patterns the
  // NFA cannot compile (tree atoms) fall through to the matcher's own
  // validation.
  auto nfa = Nfa::CompileSearch(lp.body);
  ListPrefilter pre;
  if (nfa.ok()) pre.nfa = &*nfa;
  return ListSubSelectPrefiltered(store, list, lp, opts, pre);
}

Result<Datum> ListSubSelectPrefiltered(const StoreView& store,
                                       const List& list,
                                       const AnchoredListPattern& lp,
                                       const ListSplitOptions& opts,
                                       const ListPrefilter& pre) {
  if (pre.nfa != nullptr) {
    bool may_match = pre.dfa != nullptr ? pre.dfa->ExistsMatch(store, list)
                                        : pre.nfa->ExistsMatch(store, list);
    if (!may_match) {
      AQUA_OBS_COUNT("pattern.nfa_prefilter_rejects", 1);
      return Datum::Set({});
    }
  }
  ListMatcher matcher(store, list);
  AQUA_ASSIGN_OR_RETURN(std::vector<ListMatch> matches,
                        matcher.FindAll(lp, opts.match));
  Datum out = Datum::Set({});
  for (const ListMatch& m : matches) {
    List y;
    auto ranges = m.PruneRanges();
    size_t next_range = 0;
    for (size_t i = m.begin; i < m.end; ++i) {
      if (next_range < ranges.size() && i == ranges[next_range].first) {
        i = ranges[next_range].second - 1;
        ++next_range;
        continue;
      }
      y.Append(list.at(i));
    }
    out.SetInsert(Datum::Of(std::move(y)));
  }
  return out;
}

Result<Datum> ListAllAnc(const StoreView& store, const List& list,
                         const AnchoredListPattern& lp, const ListAncFn& fn,
                         const ListSplitOptions& opts) {
  ListMatcher matcher(store, list);
  AQUA_ASSIGN_OR_RETURN(std::vector<ListMatch> matches,
                        matcher.FindAll(lp, opts.match));
  Datum out = Datum::Set({});
  for (const ListMatch& m : matches) {
    ListSplitPieces pieces = MakeListSplitPieces(list, m, opts);
    AQUA_ASSIGN_OR_RETURN(Datum result,
                          fn(pieces.x, CloseAllPoints(pieces.y)));
    out.SetInsert(std::move(result));
  }
  return out;
}

Result<Datum> ListAllDesc(const StoreView& store, const List& list,
                          const AnchoredListPattern& lp, const ListDescFn& fn,
                          const ListSplitOptions& opts) {
  ListMatcher matcher(store, list);
  AQUA_ASSIGN_OR_RETURN(std::vector<ListMatch> matches,
                        matcher.FindAll(lp, opts.match));
  Datum out = Datum::Set({});
  for (const ListMatch& m : matches) {
    ListSplitPieces pieces = MakeListSplitPieces(list, m, opts);
    AQUA_ASSIGN_OR_RETURN(Datum result, fn(pieces.y, pieces.z));
    out.SetInsert(std::move(result));
  }
  return out;
}

}  // namespace aqua
