#ifndef AQUA_BULK_CONCAT_H_
#define AQUA_BULK_CONCAT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "bulk/list.h"
#include "bulk/tree.h"

namespace aqua {

// Concatenation over instances (§3.3, §3.5 of the paper).
//
// A concatenation point is a labeled NULL inside a list or tree; the
// concatenation operator ∘_α substitutes another instance at every point
// labeled α. Substituting `nil` (the empty tree / empty list) deletes the
// point. If the base holds no point labeled α, the result is just the base
// (paper, §3.3).

/// Tree concatenation `base ∘_label attachment`.
Tree ConcatAt(const Tree& base, const std::string& label,
              const Tree& attachment);

/// Concatenates `nil` at every point labeled `label` (deletes the points).
Tree ConcatNilAt(const Tree& base, const std::string& label);

/// Concatenates `nil` at *every* concatenation point: the paper's shorthand
/// `b ∘_{α1,...,αn} []`.
Tree CloseAllPoints(const Tree& base);

/// The k-th element of the language of the iterative self-concatenation
/// `[[t]]^{*label}`: k copies of `t` chained at `label`, with NULL attached
/// at the last iteration (k = 0 yields nil).
Tree SelfConcatElement(const Tree& t, const std::string& label, size_t k);

/// List concatenation `a ∘ b` (plain regex-style append; the implicit
/// terminal NULL of `a` is the attachment point).
List Concat(const List& a, const List& b);

/// List concatenation at a labeled point: every element of `a` that is a
/// point labeled `label` is replaced by the elements of `b`.
List ConcatAt(const List& a, const std::string& label, const List& b);

/// Concatenates `nil` at every point labeled `label` in `a`.
List ConcatNilAt(const List& a, const std::string& label);

/// Concatenates `nil` at every concatenation point of `a`.
List CloseAllPoints(const List& a);

// ---------------------------------------------------------------------------
// The list <-> list-like-tree mapping (§6).

/// Encodes a list as a list-like tree (chain); the empty list maps to nil.
/// Per §6, a list-like tree can carry a concatenation point only at its
/// leaf, so a point anywhere but the last element is InvalidArgument.
Result<Tree> ListToTree(const List& list);

/// Decodes a list-like tree (every node with at most one child) back to a
/// list; fails with InvalidArgument when some node has arity > 1.
Result<List> TreeToList(const Tree& tree);

/// True when every node of `tree` has at most one child.
bool IsListLike(const Tree& tree);

}  // namespace aqua

#endif  // AQUA_BULK_CONCAT_H_
