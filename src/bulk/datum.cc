#include "bulk/datum.h"

namespace aqua {

Datum Datum::Scalar(Value v) {
  Datum d;
  d.kind_ = Kind::kScalar;
  d.scalar_ = std::move(v);
  return d;
}

Datum Datum::Of(Tree t) {
  Datum d;
  d.kind_ = Kind::kTree;
  d.tree_ = std::make_shared<const Tree>(std::move(t));
  return d;
}

Datum Datum::Of(List l) {
  Datum d;
  d.kind_ = Kind::kList;
  d.list_ = std::make_shared<const List>(std::move(l));
  return d;
}

Datum Datum::Tuple(std::vector<Datum> fields) {
  Datum d;
  d.kind_ = Kind::kTuple;
  d.children_ = std::move(fields);
  return d;
}

Datum Datum::Set(std::vector<Datum> elems) {
  Datum d;
  d.kind_ = Kind::kSet;
  for (auto& e : elems) d.SetInsert(std::move(e));
  return d;
}

bool Datum::Equals(const Datum& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kScalar:
      return scalar_.Equals(other.scalar_);
    case Kind::kList:
      return list_->Equals(*other.list_);
    case Kind::kTree:
      return tree_->StructurallyEquals(*other.tree_);
    case Kind::kTuple: {
      if (children_.size() != other.children_.size()) return false;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (!children_[i].Equals(other.children_[i])) return false;
      }
      return true;
    }
    case Kind::kSet: {
      if (children_.size() != other.children_.size()) return false;
      // Order-insensitive containment both ways; sets are deduplicated so
      // equal sizes + one-way containment suffices.
      for (const Datum& e : children_) {
        if (!other.SetContains(e)) return false;
      }
      return true;
    }
  }
  return false;
}

bool Datum::SetContains(const Datum& d) const {
  for (const Datum& e : children_) {
    if (e.Equals(d)) return true;
  }
  return false;
}

void Datum::SetInsert(Datum d) {
  kind_ = Kind::kSet;
  if (!SetContains(d)) children_.push_back(std::move(d));
}

void Datum::TupleAppend(Datum d) {
  kind_ = Kind::kTuple;
  children_.push_back(std::move(d));
}

std::string Datum::ToString(const LabelFn& label) const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kScalar:
      return scalar_.ToString();
    case Kind::kList:
      return PrintList(*list_, label);
    case Kind::kTree:
      return PrintTree(*tree_, label);
    case Kind::kTuple: {
      std::string out = "<";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i].ToString(label);
      }
      out += ">";
      return out;
    }
    case Kind::kSet: {
      std::string out = "{";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i].ToString(label);
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

}  // namespace aqua
