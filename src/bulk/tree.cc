#include "bulk/tree.h"

#include <algorithm>

namespace aqua {

Tree Tree::Leaf(NodePayload payload) {
  Tree t;
  NodeId n = t.AddNode(std::move(payload));
  t.root_ = n;
  return t;
}

Tree Tree::Node(NodePayload payload, const std::vector<Tree>& children) {
  Tree t = Leaf(std::move(payload));
  for (const Tree& child : children) {
    if (child.empty()) continue;
    NodeId sub = child.CopyInto(&t, child.root());
    t.children_[t.root_].push_back(sub);
    t.parents_[sub] = t.root_;
  }
  return t;
}

Tree Tree::Point(std::string label) {
  return Leaf(NodePayload::ConcatPoint(std::move(label)));
}

Result<size_t> Tree::ChildIndex(NodeId parent, NodeId child) const {
  const auto& kids = children_[parent];
  auto it = std::find(kids.begin(), kids.end(), child);
  if (it == kids.end()) {
    return Status::OutOfRange("node is not a child of the given parent");
  }
  return static_cast<size_t>(it - kids.begin());
}

std::vector<NodeId> Tree::Preorder() const {
  if (empty()) return {};
  return PreorderFrom(root_);
}

std::vector<NodeId> Tree::PreorderFrom(NodeId n) const {
  std::vector<NodeId> out;
  out.reserve(payloads_.size());
  std::vector<NodeId> stack = {n};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& kids = children_[cur];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

size_t Tree::DepthOf(NodeId n) const {
  size_t d = 0;
  while (parents_[n] != kInvalidNode) {
    n = parents_[n];
    ++d;
  }
  return d;
}

size_t Tree::Height() const {
  if (empty()) return 0;
  size_t h = 0;
  // Depth-first with explicit (node, depth) stack.
  std::vector<std::pair<NodeId, size_t>> stack = {{root_, 0}};
  while (!stack.empty()) {
    auto [cur, d] = stack.back();
    stack.pop_back();
    h = std::max(h, d);
    for (NodeId c : children_[cur]) stack.push_back({c, d + 1});
  }
  return h;
}

size_t Tree::MaxArity() const {
  size_t m = 0;
  for (const auto& kids : children_) m = std::max(m, kids.size());
  return m;
}

bool Tree::IsAncestorOf(NodeId anc, NodeId n) const {
  while (n != kInvalidNode) {
    if (n == anc) return true;
    n = parents_[n];
  }
  return false;
}

NodeId Tree::AddNode(NodePayload payload) {
  NodeId n = static_cast<NodeId>(payloads_.size());
  payloads_.push_back(std::move(payload));
  children_.emplace_back();
  parents_.push_back(kInvalidNode);
  return n;
}

Status Tree::AddChild(NodeId parent, NodeId child) {
  if (parent >= payloads_.size() || child >= payloads_.size()) {
    return Status::OutOfRange("node id out of range");
  }
  if (parents_[child] != kInvalidNode) {
    return Status::InvalidArgument("child already has a parent");
  }
  if (IsAncestorOf(child, parent)) {
    return Status::InvalidArgument("adding child would create a cycle");
  }
  children_[parent].push_back(child);
  parents_[child] = parent;
  return Status::OK();
}

Status Tree::SetRoot(NodeId n) {
  if (n >= payloads_.size()) return Status::OutOfRange("node id out of range");
  if (parents_[n] != kInvalidNode) {
    return Status::InvalidArgument("root must not have a parent");
  }
  root_ = n;
  return Status::OK();
}

NodeId Tree::CopyInto(Tree* dst, NodeId src_node) const {
  NodeId copy = dst->AddNode(payloads_[src_node]);
  for (NodeId c : children_[src_node]) {
    NodeId child_copy = CopyInto(dst, c);
    dst->children_[copy].push_back(child_copy);
    dst->parents_[child_copy] = copy;
  }
  return copy;
}

Tree Tree::SubtreeCopy(NodeId n) const {
  Tree t;
  t.root_ = CopyInto(&t, n);
  return t;
}

Tree Tree::CopyWithSubtreeReplacedByPoint(NodeId n,
                                          const std::string& label) const {
  if (n == root_) return Point(label);
  Tree t;
  // Copy everything, but when we reach `n` emit a point leaf instead.
  struct Copier {
    const Tree* src;
    Tree* dst;
    NodeId target;
    const std::string* label;
    NodeId Copy(NodeId s) {
      if (s == target) {
        return dst->AddNode(NodePayload::ConcatPoint(*label));
      }
      NodeId copy = dst->AddNode(src->payloads_[s]);
      for (NodeId c : src->children_[s]) {
        NodeId cc = Copy(c);
        dst->children_[copy].push_back(cc);
        dst->parents_[cc] = copy;
      }
      return copy;
    }
  };
  Copier copier{this, &t, n, &label};
  t.root_ = copier.Copy(root_);
  return t;
}

Tree Tree::CopyWithSubtreeRemoved(NodeId n) const {
  if (n == root_) return Tree();
  Tree t;
  struct Copier {
    const Tree* src;
    Tree* dst;
    NodeId target;
    // Returns kInvalidNode when the node is the removed subtree root.
    NodeId Copy(NodeId s) {
      if (s == target) return kInvalidNode;
      NodeId copy = dst->AddNode(src->payloads_[s]);
      for (NodeId c : src->children_[s]) {
        NodeId cc = Copy(c);
        if (cc == kInvalidNode) continue;
        dst->children_[copy].push_back(cc);
        dst->parents_[cc] = copy;
      }
      return copy;
    }
  };
  Copier copier{this, &t, n};
  t.root_ = copier.Copy(root_);
  return t;
}

bool Tree::HasPoint(const std::string& label) const {
  for (const auto& p : payloads_) {
    if (p.is_concat_point() && p.label() == label) return true;
  }
  return false;
}

std::vector<NodeId> Tree::FindPoints(const std::string& label) const {
  std::vector<NodeId> out;
  for (NodeId n : Preorder()) {
    const auto& p = payloads_[n];
    if (p.is_concat_point() && p.label() == label) out.push_back(n);
  }
  return out;
}

std::vector<std::string> Tree::PointLabels() const {
  std::vector<std::string> out;
  for (NodeId n : Preorder()) {
    const auto& p = payloads_[n];
    if (p.is_concat_point()) out.push_back(p.label());
  }
  return out;
}

bool Tree::StructurallyEquals(const Tree& other) const {
  if (empty() || other.empty()) return empty() == other.empty();
  struct Cmp {
    const Tree* a;
    const Tree* b;
    bool Eq(NodeId x, NodeId y) const {
      if (a->payloads_[x] != b->payloads_[y]) return false;
      const auto& cx = a->children_[x];
      const auto& cy = b->children_[y];
      if (cx.size() != cy.size()) return false;
      for (size_t i = 0; i < cx.size(); ++i) {
        if (!Eq(cx[i], cy[i])) return false;
      }
      return true;
    }
  };
  return Cmp{this, &other}.Eq(root_, other.root_);
}

Status Tree::Validate() const {
  if (empty()) {
    if (!payloads_.empty()) {
      return Status::Internal("empty tree with allocated nodes");
    }
    return Status::OK();
  }
  if (root_ >= payloads_.size()) return Status::Internal("root out of range");
  if (parents_[root_] != kInvalidNode) {
    return Status::Internal("root has a parent");
  }
  std::vector<bool> seen(payloads_.size(), false);
  std::vector<NodeId> order = Preorder();
  for (NodeId n : order) {
    if (seen[n]) return Status::Internal("node reached twice (cycle/share)");
    seen[n] = true;
    for (NodeId c : children_[n]) {
      if (c >= payloads_.size()) return Status::Internal("child out of range");
      if (parents_[c] != n) return Status::Internal("parent link mismatch");
    }
    if (payloads_[n].is_concat_point() && !children_[n].empty()) {
      return Status::Internal("concatenation point must be a leaf");
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return Status::Internal("unreachable node in arena (id " +
                              std::to_string(i) + ")");
    }
  }
  return Status::OK();
}

void Tree::MapCells(const std::function<Oid(Oid)>& fn) {
  for (NodePayload& p : payloads_) {
    if (p.is_cell()) p = NodePayload::Cell(fn(p.oid()));
  }
}

}  // namespace aqua
