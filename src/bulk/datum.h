#ifndef AQUA_BULK_DATUM_H_
#define AQUA_BULK_DATUM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "bulk/list.h"
#include "bulk/notation.h"
#include "bulk/tree.h"

namespace aqua {

/// The universal runtime value of the AQUA algebra.
///
/// Operators in the paper freely compose bulk types (`Set[Tree]`, tuples of
/// tree pieces, ...); `Datum` is the dynamically typed currency that query
/// results and `split` functions traffic in: a scalar, a list, a tree, a
/// tuple of datums, or a set of datums.
class Datum {
 public:
  enum class Kind { kNull, kScalar, kList, kTree, kTuple, kSet };

  /// Constructs the null datum.
  Datum() = default;

  static Datum Scalar(Value v);
  static Datum Of(Tree t);
  static Datum Of(List l);
  static Datum Tuple(std::vector<Datum> fields);
  /// Builds a set, deduplicating by `Equals` (insertion order kept).
  static Datum Set(std::vector<Datum> elems);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_scalar() const { return kind_ == Kind::kScalar; }
  bool is_list() const { return kind_ == Kind::kList; }
  bool is_tree() const { return kind_ == Kind::kTree; }
  bool is_tuple() const { return kind_ == Kind::kTuple; }
  bool is_set() const { return kind_ == Kind::kSet; }

  const Value& scalar() const { return scalar_; }
  const List& list() const { return *list_; }
  const Tree& tree() const { return *tree_; }
  /// Tuple fields or set elements.
  const std::vector<Datum>& children() const { return children_; }
  size_t size() const { return children_.size(); }
  const Datum& at(size_t i) const { return children_[i]; }

  /// Deep structural equality (sets compare order-insensitively).
  bool Equals(const Datum& other) const;

  /// True when the set contains an element equal to `d` (set datums only).
  bool SetContains(const Datum& d) const;
  /// Inserts into a set datum unless an equal element is present.
  void SetInsert(Datum d);
  /// Appends to a tuple datum.
  void TupleAppend(Datum d);

  /// Renders the datum using `label` for cells, e.g.
  /// `{<Ted(@a), Gen(John), [Joe Mary(Ann)]>}`.
  std::string ToString(const LabelFn& label) const;

 private:
  Kind kind_ = Kind::kNull;
  Value scalar_;
  std::shared_ptr<const List> list_;
  std::shared_ptr<const Tree> tree_;
  std::vector<Datum> children_;
};

}  // namespace aqua

#endif  // AQUA_BULK_DATUM_H_
