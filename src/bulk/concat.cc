#include "bulk/concat.h"

namespace aqua {

namespace {

// Recursively copies `src` starting at `node` into `dst`, substituting a
// copy of `attachment` (or nothing, when it is empty) at every concat point
// labeled `label`. Returns the new node id, or kInvalidNode when the node
// was deleted (point + nil attachment).
struct TreeSubstituter {
  const Tree* src;
  Tree* dst;
  const std::string* label;
  const Tree* attachment;

  NodeId Copy(NodeId s) {
    const NodePayload& p = src->payload(s);
    if (p.is_concat_point() && p.label() == *label) {
      if (attachment->empty()) return kInvalidNode;
      return CopyAttachment(attachment->root());
    }
    NodeId copy = dst->AddNode(p);
    for (NodeId c : src->children(s)) {
      NodeId cc = Copy(c);
      if (cc == kInvalidNode) continue;
      Attach(copy, cc);
    }
    return copy;
  }

  NodeId CopyAttachment(NodeId a) {
    NodeId copy = dst->AddNode(attachment->payload(a));
    for (NodeId c : attachment->children(a)) {
      Attach(copy, CopyAttachment(c));
    }
    return copy;
  }

  void Attach(NodeId parent, NodeId child) {
    // AddChild cannot fail here: both nodes are fresh and detached.
    Status st = dst->AddChild(parent, child);
    (void)st;
  }
};

}  // namespace

Tree ConcatAt(const Tree& base, const std::string& label,
              const Tree& attachment) {
  if (base.empty()) return base;
  if (!base.HasPoint(label)) return base;
  Tree out;
  TreeSubstituter sub{&base, &out, &label, &attachment};
  NodeId new_root = sub.Copy(base.root());
  if (new_root == kInvalidNode) return Tree();
  Status st = out.SetRoot(new_root);
  (void)st;
  return out;
}

Tree ConcatNilAt(const Tree& base, const std::string& label) {
  return ConcatAt(base, label, Tree());
}

Tree CloseAllPoints(const Tree& base) {
  Tree out = base;
  // Labels may repeat; process each distinct label once.
  std::vector<std::string> labels = out.PointLabels();
  for (const std::string& label : labels) {
    out = ConcatNilAt(out, label);
  }
  return out;
}

Tree SelfConcatElement(const Tree& t, const std::string& label, size_t k) {
  Tree out;  // nil
  // Build inside-out: the innermost copy gets nil at its point.
  for (size_t i = 0; i < k; ++i) {
    out = ConcatAt(t, label, out);
  }
  return out;
}

List Concat(const List& a, const List& b) {
  List out = a;
  for (const auto& e : b.elems()) out.Append(e);
  return out;
}

List ConcatAt(const List& a, const std::string& label, const List& b) {
  if (!a.HasPoint(label)) return a;
  List out;
  for (const auto& e : a.elems()) {
    if (e.is_concat_point() && e.label() == label) {
      for (const auto& be : b.elems()) out.Append(be);
    } else {
      out.Append(e);
    }
  }
  return out;
}

List ConcatNilAt(const List& a, const std::string& label) {
  return ConcatAt(a, label, List());
}

List CloseAllPoints(const List& a) {
  List out;
  for (const auto& e : a.elems()) {
    if (!e.is_concat_point()) out.Append(e);
  }
  return out;
}

Result<Tree> ListToTree(const List& list) {
  if (list.empty()) return Tree();
  for (size_t i = 0; i + 1 < list.size(); ++i) {
    if (list.at(i).is_concat_point()) {
      return Status::InvalidArgument(
          "a list-like tree can have a concatenation point only at the leaf "
          "(§6); found one at position " +
          std::to_string(i));
    }
  }
  // Build the chain bottom-up.
  Tree t;
  for (size_t i = list.size(); i > 0; --i) {
    const NodePayload& p = list.at(i - 1);
    if (t.empty()) {
      t = Tree::Leaf(p);
    } else {
      t = Tree::Node(p, {t});
    }
  }
  return t;
}

Result<List> TreeToList(const Tree& tree) {
  List out;
  if (tree.empty()) return out;
  NodeId n = tree.root();
  while (true) {
    out.Append(tree.payload(n));
    const auto& kids = tree.children(n);
    if (kids.empty()) break;
    if (kids.size() > 1) {
      return Status::InvalidArgument(
          "tree is not list-like: a node has more than one child");
    }
    n = kids[0];
  }
  return out;
}

bool IsListLike(const Tree& tree) {
  for (size_t n = 0; n < tree.size(); ++n) {
    if (tree.arity(static_cast<NodeId>(n)) > 1) return false;
  }
  return true;
}

}  // namespace aqua
