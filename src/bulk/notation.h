#ifndef AQUA_BULK_NOTATION_H_
#define AQUA_BULK_NOTATION_H_

#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "object/object_store.h"
#include "bulk/list.h"
#include "bulk/tree.h"

namespace aqua {

/// Renders the object referenced by a cell as a short token.
using LabelFn = std::function<std::string(Oid)>;

/// A `LabelFn` that prints the named string attribute of each object (or
/// `oid:N` when unavailable). The returned function retains a pointer to
/// `store`, which must outlive it.
LabelFn AttrLabelFn(const ObjectStore* store, std::string attr);

/// Prints a tree in the paper's preorder notation: a node followed by the
/// parenthesized list of its children, e.g. `b(d(f g) e)` (§2).
/// Concatenation points print as `@label`.
std::string PrintTree(const Tree& tree, const LabelFn& label);

/// Prints a list in the paper's `[a b c]` notation (space-separated because
/// labels may be longer than one character).
std::string PrintList(const List& list, const LabelFn& label);

/// Maps an atom token of a literal to the object it denotes (typically by
/// creating or interning an object named by the token).
using AtomFn = std::function<Result<Oid>(const std::string&)>;

/// Parses the paper's preorder tree notation: `atom`, `atom(tree tree ...)`,
/// or `@label` for a concatenation point. `nil` denotes the empty tree.
/// Atoms are identifiers or double-quoted strings.
Result<Tree> ParseTreeLiteral(std::string_view text, const AtomFn& atom);

/// Parses `[atom atom ... ]` list notation (atoms and `@label` points).
Result<List> ParseListLiteral(std::string_view text, const AtomFn& atom);

}  // namespace aqua

#endif  // AQUA_BULK_NOTATION_H_
