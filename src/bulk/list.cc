#include "bulk/list.h"

namespace aqua {

List List::OfOids(const std::vector<Oid>& oids) {
  std::vector<NodePayload> elems;
  elems.reserve(oids.size());
  for (Oid o : oids) elems.push_back(NodePayload::Cell(o));
  return List(std::move(elems));
}

List List::Sublist(size_t begin, size_t end) const {
  if (begin > end || end > elems_.size()) return List();
  return List(std::vector<NodePayload>(elems_.begin() + begin,
                                       elems_.begin() + end));
}

bool List::HasPoint(const std::string& label) const {
  for (const auto& e : elems_) {
    if (e.is_concat_point() && e.label() == label) return true;
  }
  return false;
}

std::vector<size_t> List::FindPoints(const std::string& label) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < elems_.size(); ++i) {
    if (elems_[i].is_concat_point() && elems_[i].label() == label) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::string> List::PointLabels() const {
  std::vector<std::string> out;
  for (const auto& e : elems_) {
    if (e.is_concat_point()) out.push_back(e.label());
  }
  return out;
}

bool List::Equals(const List& other) const {
  if (elems_.size() != other.elems_.size()) return false;
  for (size_t i = 0; i < elems_.size(); ++i) {
    if (elems_[i] != other.elems_[i]) return false;
  }
  return true;
}

void List::MapCells(const std::function<Oid(Oid)>& fn) {
  for (NodePayload& e : elems_) {
    if (e.is_cell()) e = NodePayload::Cell(fn(e.oid()));
  }
}

}  // namespace aqua
