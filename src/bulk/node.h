#ifndef AQUA_BULK_NODE_H_
#define AQUA_BULK_NODE_H_

#include <string>
#include <utility>

#include "common/ids.h"

namespace aqua {

/// Payload of a list element or tree node.
///
/// Per §2 of the paper, the elements of a list or tree are of type
/// `Cell[T]`: a cell is a node with its own identity that *contains* the
/// identity of the actual element object, so the node set can be a set while
/// element objects may repeat. Per §3.5, a node may instead be a *labeled
/// NULL* (concatenation point): only the concatenation operator can observe
/// it.
class NodePayload {
 public:
  enum class Kind { kCell, kConcatPoint };

  /// A cell containing (the identity of) object `oid`.
  static NodePayload Cell(Oid oid) { return NodePayload(Kind::kCell, oid, ""); }

  /// A labeled NULL with concatenation-point label `label`.
  static NodePayload ConcatPoint(std::string label) {
    return NodePayload(Kind::kConcatPoint, Oid::Null(), std::move(label));
  }

  Kind kind() const { return kind_; }
  bool is_cell() const { return kind_ == Kind::kCell; }
  bool is_concat_point() const { return kind_ == Kind::kConcatPoint; }

  /// The referenced object; null Oid when this is a concat point.
  Oid oid() const { return oid_; }
  /// The concatenation-point label; empty when this is a cell.
  const std::string& label() const { return label_; }

  /// Payload equality: same kind and same oid/label. Note this compares the
  /// cell *contents* (shared object identity), not cell identity — cell
  /// identity is positional in this implementation.
  friend bool operator==(const NodePayload& a, const NodePayload& b) {
    return a.kind_ == b.kind_ && a.oid_ == b.oid_ && a.label_ == b.label_;
  }
  friend bool operator!=(const NodePayload& a, const NodePayload& b) {
    return !(a == b);
  }

 private:
  NodePayload(Kind kind, Oid oid, std::string label)
      : kind_(kind), oid_(oid), label_(std::move(label)) {}

  Kind kind_;
  Oid oid_;
  std::string label_;
};

}  // namespace aqua

#endif  // AQUA_BULK_NODE_H_
