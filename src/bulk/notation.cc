#include "bulk/notation.h"

#include <cctype>

#include "common/str_util.h"

namespace aqua {

LabelFn AttrLabelFn(const ObjectStore* store, std::string attr) {
  return [store, attr = std::move(attr)](Oid oid) -> std::string {
    auto value = store->GetAttr(oid, attr);
    if (!value.ok()) return "oid:" + std::to_string(oid.value);
    if (value->is_string()) return value->string_value();
    return value->ToString();
  };
}

namespace {

void PrintTreeNode(const Tree& tree, NodeId n, const LabelFn& label,
                   std::string* out) {
  const NodePayload& p = tree.payload(n);
  if (p.is_concat_point()) {
    *out += "@" + p.label();
  } else {
    *out += label(p.oid());
  }
  const auto& kids = tree.children(n);
  if (!kids.empty()) {
    *out += "(";
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i > 0) *out += " ";
      PrintTreeNode(tree, kids[i], label, out);
    }
    *out += ")";
  }
}

}  // namespace

std::string PrintTree(const Tree& tree, const LabelFn& label) {
  if (tree.empty()) return "nil";
  std::string out;
  PrintTreeNode(tree, tree.root(), label, &out);
  return out;
}

std::string PrintList(const List& list, const LabelFn& label) {
  std::string out = "[";
  for (size_t i = 0; i < list.size(); ++i) {
    if (i > 0) out += " ";
    const NodePayload& p = list.at(i);
    if (p.is_concat_point()) {
      out += "@" + p.label();
    } else {
      out += label(p.oid());
    }
  }
  out += "]";
  return out;
}

namespace {

/// A tiny recursive-descent parser shared by tree and list literals.
class LiteralParser {
 public:
  LiteralParser(std::string_view text, const AtomFn& atom)
      : text_(text), atom_(atom) {}

  Result<Tree> ParseTreeTop() {
    AQUA_ASSIGN_OR_RETURN(Tree t, ParseTree());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing input at position " +
                                std::to_string(pos_));
    }
    return t;
  }

  Result<List> ParseListTop() {
    SkipSpace();
    if (!Eat('[')) return Status::ParseError("expected '[' to start a list");
    List out;
    SkipSpace();
    while (!AtEnd() && Peek() != ']') {
      AQUA_ASSIGN_OR_RETURN(NodePayload p, ParsePayload());
      out.Append(std::move(p));
      SkipSpace();
    }
    if (!Eat(']')) return Status::ParseError("expected ']' to end the list");
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing input after ']'");
    }
    return out;
  }

 private:
  Result<Tree> ParseTree() {
    SkipSpace();
    if (AtEnd()) return Status::ParseError("unexpected end of tree literal");
    // `nil` denotes the empty tree (only meaningful at top level or as an
    // explicit placeholder; as a child it is skipped by Tree::Node).
    size_t save = pos_;
    if (IsIdentStart(Peek())) {
      std::string ident = LexIdent();
      if (ident == "nil") return Tree();
      pos_ = save;
    }
    AQUA_ASSIGN_OR_RETURN(NodePayload p, ParsePayload());
    SkipSpace();
    std::vector<Tree> children;
    if (!AtEnd() && Peek() == '(') {
      if (p.is_concat_point()) {
        return Status::ParseError("a concatenation point cannot have children");
      }
      Eat('(');
      SkipSpace();
      while (!AtEnd() && Peek() != ')') {
        AQUA_ASSIGN_OR_RETURN(Tree child, ParseTree());
        children.push_back(std::move(child));
        SkipSpace();
      }
      if (!Eat(')')) return Status::ParseError("expected ')'");
    }
    return Tree::Node(std::move(p), children);
  }

  Result<NodePayload> ParsePayload() {
    SkipSpace();
    if (AtEnd()) return Status::ParseError("unexpected end of literal");
    char c = Peek();
    if (c == '@') {
      ++pos_;
      if (AtEnd() || !IsIdentChar(Peek())) {
        return Status::ParseError("expected a label after '@'");
      }
      std::string label = LexIdent();
      return NodePayload::ConcatPoint(std::move(label));
    }
    std::string token;
    if (c == '"') {
      ++pos_;
      while (!AtEnd() && Peek() != '"') token += text_[pos_++];
      if (!Eat('"')) return Status::ParseError("unterminated string atom");
    } else if (IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c))) {
      token = LexIdent();
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in literal");
    }
    AQUA_ASSIGN_OR_RETURN(Oid oid, atom_(token));
    return NodePayload::Cell(oid);
  }

  std::string LexIdent() {
    std::string out;
    while (!AtEnd() && IsIdentChar(Peek())) out += text_[pos_++];
    return out;
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Eat(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  std::string_view text_;
  const AtomFn& atom_;
  size_t pos_ = 0;
};

}  // namespace

Result<Tree> ParseTreeLiteral(std::string_view text, const AtomFn& atom) {
  return LiteralParser(text, atom).ParseTreeTop();
}

Result<List> ParseListLiteral(std::string_view text, const AtomFn& atom) {
  return LiteralParser(text, atom).ParseListTop();
}

}  // namespace aqua
