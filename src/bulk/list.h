#ifndef AQUA_BULK_LIST_H_
#define AQUA_BULK_LIST_H_

#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "bulk/node.h"

namespace aqua {

/// An ordered list of `NodePayload` elements (the paper's `List[T]`, §2).
///
/// Elements are cells (object references) or labeled NULLs (concatenation
/// points, §3.5). List edges run left to right. A list is exactly a
/// "list-like tree" (each node has at most one child, §6); `bulk/concat.h`
/// provides the mapping in both directions.
class List {
 public:
  List() = default;
  explicit List(std::vector<NodePayload> elems) : elems_(std::move(elems)) {}

  /// Builds a list of cells from object ids.
  static List OfOids(const std::vector<Oid>& oids);

  bool empty() const { return elems_.empty(); }
  size_t size() const { return elems_.size(); }
  const NodePayload& at(size_t i) const { return elems_[i]; }
  const std::vector<NodePayload>& elems() const { return elems_; }

  void Append(NodePayload payload) { elems_.push_back(std::move(payload)); }

  /// The contiguous sublist [begin, end).
  List Sublist(size_t begin, size_t end) const;

  /// Rewrites every cell's oid through `fn`, in place; points are
  /// untouched (see Tree::MapCells).
  void MapCells(const std::function<Oid(Oid)>& fn);

  /// True when some element is a concatenation point labeled `label`.
  bool HasPoint(const std::string& label) const;
  /// Positions of concatenation points labeled `label`.
  std::vector<size_t> FindPoints(const std::string& label) const;
  /// Labels of all concatenation points in order (with duplicates).
  std::vector<std::string> PointLabels() const;

  /// Element-wise equality (cell contents / point labels).
  bool Equals(const List& other) const;

  friend bool operator==(const List& a, const List& b) { return a.Equals(b); }
  friend bool operator!=(const List& a, const List& b) { return !a.Equals(b); }

 private:
  std::vector<NodePayload> elems_;
};

}  // namespace aqua

#endif  // AQUA_BULK_LIST_H_
