#ifndef AQUA_BULK_TREE_H_
#define AQUA_BULK_TREE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "bulk/node.h"

namespace aqua {

/// An ordered, rooted tree of `NodePayload` nodes (the paper's `Tree[T]`,
/// §2).
///
/// * Children are ordered left to right; arity may vary per node
///   ("variable-arity" trees).
/// * Nodes are stored in an arena addressed by `NodeId`; the tree also
///   maintains parent links for upward navigation (used by `all_anc` and
///   `split`).
/// * A node may be a labeled NULL (concatenation point, §3.5); such nodes
///   must be leaves.
/// * The empty tree (`empty() == true`) plays the role of `nil` in
///   concatenation: concatenating `nil` at a point deletes the point.
class Tree {
 public:
  /// Constructs the empty (nil) tree.
  Tree() = default;

  Tree(const Tree&) = default;
  Tree& operator=(const Tree&) = default;
  Tree(Tree&&) = default;
  Tree& operator=(Tree&&) = default;

  /// Builds a single-node tree.
  static Tree Leaf(NodePayload payload);

  /// Builds a tree from a root payload and already-built child subtrees
  /// (empty children are skipped).
  static Tree Node(NodePayload payload, const std::vector<Tree>& children);

  /// Convenience: a single concatenation-point leaf.
  static Tree Point(std::string label);

  // ---------------------------------------------------------------------
  // Structure

  bool empty() const { return root_ == kInvalidNode; }
  /// Number of nodes.
  size_t size() const { return payloads_.size(); }
  NodeId root() const { return root_; }

  const NodePayload& payload(NodeId n) const { return payloads_[n]; }
  const std::vector<NodeId>& children(NodeId n) const { return children_[n]; }
  /// Parent of `n`, or `kInvalidNode` for the root.
  NodeId parent(NodeId n) const { return parents_[n]; }
  bool is_leaf(NodeId n) const { return children_[n].empty(); }

  /// Out-degree of `n`.
  size_t arity(NodeId n) const { return children_[n].size(); }

  /// Position of `child` within `parent`'s child list; OutOfRange if absent.
  Result<size_t> ChildIndex(NodeId parent, NodeId child) const;

  /// Nodes in preorder (root, then children left to right).
  std::vector<NodeId> Preorder() const;
  /// Preorder of the subtree rooted at `n`.
  std::vector<NodeId> PreorderFrom(NodeId n) const;

  /// Depth of node `n` (root has depth 0).
  size_t DepthOf(NodeId n) const;
  /// Height of the tree (single node -> 0; empty -> 0).
  size_t Height() const;
  /// Maximum out-degree over all nodes.
  size_t MaxArity() const;

  /// True when `anc` is a proper or improper ancestor of `n`.
  bool IsAncestorOf(NodeId anc, NodeId n) const;

  // ---------------------------------------------------------------------
  // Incremental construction

  /// Adds a detached node; attach it with `AddChild` or make it the root.
  NodeId AddNode(NodePayload payload);
  /// Appends `child` (a detached node or subtree root) under `parent`.
  Status AddChild(NodeId parent, NodeId child);
  /// Sets the root node.
  Status SetRoot(NodeId n);

  // ---------------------------------------------------------------------
  // Copying / editing

  /// Deep copy of the subtree rooted at `n`, as a fresh tree.
  Tree SubtreeCopy(NodeId n) const;

  /// Copy of this tree with the subtree rooted at `n` removed and replaced
  /// by a concatenation point labeled `label` (the "context" used by
  /// `split`). If `n` is the root the result is a single point node.
  Tree CopyWithSubtreeReplacedByPoint(NodeId n, const std::string& label) const;

  /// Copy of this tree with the subtree rooted at `n` removed entirely
  /// (the node disappears from its parent's child list). Removing the root
  /// yields the empty tree.
  Tree CopyWithSubtreeRemoved(NodeId n) const;

  /// Rewrites every cell's oid through `fn`, in place; points are
  /// untouched. Used by the executor to resolve provisional oids after a
  /// snapshot-delta apply commits.
  void MapCells(const std::function<Oid(Oid)>& fn);

  // ---------------------------------------------------------------------
  // Concatenation points (§3.5)

  /// True when some node is a concatenation point labeled `label`.
  bool HasPoint(const std::string& label) const;
  /// All concatenation-point nodes labeled `label`, in preorder.
  std::vector<NodeId> FindPoints(const std::string& label) const;
  /// Labels of all concatenation points, in preorder (with duplicates).
  std::vector<std::string> PointLabels() const;

  // ---------------------------------------------------------------------
  // Comparison / checking

  /// Structural equality: same shape and equal payloads position-wise.
  bool StructurallyEquals(const Tree& other) const;

  /// Verifies internal invariants: single root reaching every arena node,
  /// acyclic parent/child links, concat points are leaves.
  Status Validate() const;

 private:
  NodeId CopyInto(Tree* dst, NodeId src_node) const;

  NodeId root_ = kInvalidNode;
  std::vector<NodePayload> payloads_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<NodeId> parents_;
};

}  // namespace aqua

#endif  // AQUA_BULK_TREE_H_
